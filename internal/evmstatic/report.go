package evmstatic

import (
	"encoding/hex"
	"fmt"
	"math/big"
	"strings"

	"repro/internal/ethtypes"
)

// StaticFunc is one dispatched function recovered from bytecode.
type StaticFunc struct {
	Selector [4]byte
	// EntryPC is the JUMPDEST the dispatcher routes this selector to.
	EntryPC int
	// Payable mirrors the dynamic prober's notion: a successful halt is
	// reachable from the entry without passing a callvalue==0 guard or a
	// privileged-caller gate.
	Payable bool
	// HasSplit reports whether the function body contains the
	// operator/affiliate payout pair.
	HasSplit bool
	// SplitPerMille is the operator share of the body's split, 0 when
	// absent or unresolved.
	SplitPerMille int64
}

// StaticAnalysis is the static counterpart of contracts.Analysis,
// recovered without executing any bytecode.
type StaticAnalysis struct {
	// Functions lists the dispatched selectors in dispatcher code order.
	Functions []StaticFunc
	// FallbackPC is the entry PC of the short-calldata fallback path,
	// -1 when no dispatcher fallback test was found.
	FallbackPC int
	// PayableFallback mirrors the dynamic probe: the fallback path both
	// halts successfully for an arbitrary value-bearing caller and
	// forwards value onward.
	PayableFallback bool

	// HasSplit reports whether a profit split was found anywhere; the
	// fields below describe the split chosen the same way the dynamic
	// decompiler chooses its ETHFunction — first payable dispatched
	// function with a split, else the fallback.
	HasSplit bool
	// SplitSelector is the selector owning the split; meaningful only
	// when HasSplit && !SplitInFallback.
	SplitSelector [4]byte
	// SplitInFallback marks a fallback-resident split (Inferno style).
	SplitInFallback bool

	// OperatorPerMille is the operator share; RatioKnown distinguishes
	// "resolved to 0" from "split present but ratio symbolic" (e.g. the
	// ratio lives in storage and no environment was supplied).
	OperatorPerMille int64
	RatioKnown       bool
	// RatioInPaperSet reports membership in the paper's Table 3 set.
	RatioInPaperSet bool

	// Operator is the share-call target when it resolved to a constant.
	Operator      ethtypes.Address
	OperatorKnown bool
	// Affiliate is the remainder-call target when constant;
	// AffiliateFromCalldata marks the claim-style idiom where the
	// affiliate arrives as the first calldata argument instead.
	Affiliate             ethtypes.Address
	AffiliateKnown        bool
	AffiliateFromCalldata bool

	// Fingerprints are the static detection verdicts of the
	// multi-fingerprint analyzers (approval-phishing, proxy, pyramid).
	Fingerprints []Fingerprint
	// TaintSinks counts program points where calldata-derived data
	// reached a non-dispatch sink (CALL payload, SSTORE, or LOG topic).
	TaintSinks int

	// ProxyResolved marks an analysis that followed a proxy through to
	// its implementation (AnalyzeResolved); ProxyImpl is the resolved
	// implementation address.
	ProxyResolved bool
	ProxyImpl     ethtypes.Address

	// ConstructorStores and Runtime are populated by AnalyzeDeploy:
	// the constant SSTOREs the constructor performs and the runtime it
	// installs.
	ConstructorStores []StorageSlot
	Runtime           []byte

	// CFG statistics.
	Blocks          int
	ReachableBlocks int
	// ValueCalls counts CALL sites whose forwarded value is not a known
	// zero.
	ValueCalls int
	// Truncated reports a PUSH running past the end of the code.
	Truncated bool
	// Incomplete reports that the analysis hit a resolution limit (a
	// computed jump target or the per-block visit cap): results are an
	// under-approximation.
	Incomplete bool
	// Budgeted reports that the whole-CFG abstract-interpretation
	// budget was exhausted (adversarial jump-dense bytecode): the
	// result is partial. Budgeted implies Incomplete.
	Budgeted bool
}

// AnalyzeRuntime statically analyzes runtime bytecode. storage supplies
// constant storage words (nil leaves every SLOAD symbolic); use
// TotalStorage for freshly deployed contracts where unwritten slots are
// exactly zero.
func AnalyzeRuntime(code []byte, storage Storage) *StaticAnalysis {
	g := BuildCFG(code)
	a := newAnalysis(g, storage)
	a.run()

	rep := &StaticAnalysis{FallbackPC: -1, Blocks: len(g.Blocks)}
	for _, b := range g.Blocks {
		if b.Reachable {
			rep.ReachableBlocks++
		}
	}
	for _, in := range g.Instrs {
		if in.Truncated {
			rep.Truncated = true
		}
	}
	rep.Incomplete = a.incomplete
	rep.Budgeted = a.budgeted
	rep.TaintSinks = len(a.taintSinks)
	for _, c := range a.calls {
		if !(c.value.isConst() && c.value.Const.Sign() == 0) {
			rep.ValueCalls++
		}
	}
	rep.Fingerprints = detectFingerprints(code, a)

	// Dispatched functions, in dispatcher code order.
	var chosen *splitFacts
	for _, e := range selectorOrder(a) {
		body := reachableFrom(g, e.target)
		split := findSplit(a, body)
		fn := StaticFunc{
			Selector: e.sel,
			EntryPC:  g.Blocks[e.target].StartPC,
			Payable:  successReachable(g, a.edgeConds, e.target),
			HasSplit: split.found,
		}
		if split.ratioKnown {
			fn.SplitPerMille = split.pm
		}
		if chosen == nil && fn.Payable && split.found {
			s := split
			chosen = &s
			rep.SplitSelector = e.sel
		}
		rep.Functions = append(rep.Functions, fn)
	}

	// Fallback path.
	if a.fallbackPC >= 0 {
		rep.FallbackPC = a.fallbackPC
		if fb, ok := g.BlockAt(a.fallbackPC); ok {
			body := reachableFrom(g, fb)
			split := findSplit(a, body)
			rep.PayableFallback = successReachable(g, a.edgeConds, fb) && split.found
			if chosen == nil && rep.PayableFallback {
				s := split
				chosen = &s
				rep.SplitInFallback = true
			}
		}
	}

	if chosen != nil {
		rep.HasSplit = true
		rep.OperatorPerMille = chosen.pm
		rep.RatioKnown = chosen.ratioKnown
		rep.RatioInPaperSet = chosen.ratioKnown && RatioInPaperSet(chosen.pm)
		rep.Operator = chosen.operator
		rep.OperatorKnown = chosen.opKnown
		rep.Affiliate = chosen.affiliate
		rep.AffiliateKnown = chosen.affKnown
		rep.AffiliateFromCalldata = chosen.affFromCD
	}
	return rep
}

// AnalyzeDeploy statically analyzes creation bytecode: it interprets
// the constructor to collect its constant SSTOREs, carves the runtime
// out of the initcode via the constructor's CODECOPY/RETURN pair, and
// then analyzes that runtime under the recovered storage (unwritten
// slots are exactly zero on a fresh deployment, so the environment is
// total).
func AnalyzeDeploy(initcode []byte) (*StaticAnalysis, error) {
	g := BuildCFG(initcode)
	a := newAnalysis(g, nil)
	a.run()

	runtime, err := carveRuntime(initcode, a)
	if err != nil {
		return nil, err
	}
	stores := dedupedStores(a)
	rep := AnalyzeRuntime(runtime, TotalStorage(stores))
	rep.ConstructorStores = stores
	rep.Runtime = runtime
	return rep, nil
}

// TotalStorage builds a Storage that resolves every slot: listed pairs
// return their value, everything else returns zero. Correct for fresh
// deployments and full state snapshots.
func TotalStorage(pairs []StorageSlot) Storage {
	base := NewStorage(pairs)
	return func(slot *big.Int) (*big.Int, bool) {
		if v, ok := base(slot); ok {
			return v, true
		}
		return new(big.Int), true
	}
}

// Summary renders the report for terminal display.
func (r *StaticAnalysis) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "blocks: %d (%d reachable)", r.Blocks, r.ReachableBlocks)
	if r.Truncated {
		b.WriteString("  [truncated code]")
	}
	if r.Incomplete {
		b.WriteString("  [analysis incomplete]")
	}
	if r.Budgeted {
		b.WriteString("  [budget exhausted]")
	}
	b.WriteByte('\n')
	for _, fn := range r.Functions {
		fmt.Fprintf(&b, "function 0x%s @%04x payable=%v", hex.EncodeToString(fn.Selector[:]), fn.EntryPC, fn.Payable)
		if fn.HasSplit {
			fmt.Fprintf(&b, " split=%d‰", fn.SplitPerMille)
		}
		b.WriteByte('\n')
	}
	if r.FallbackPC >= 0 {
		fmt.Fprintf(&b, "fallback @%04x payable=%v\n", r.FallbackPC, r.PayableFallback)
	}
	if r.HasSplit {
		where := fmt.Sprintf("selector 0x%s", hex.EncodeToString(r.SplitSelector[:]))
		if r.SplitInFallback {
			where = "fallback"
		}
		fmt.Fprintf(&b, "profit split in %s:", where)
		if r.RatioKnown {
			fmt.Fprintf(&b, " operator %d‰ (paper set: %v)", r.OperatorPerMille, r.RatioInPaperSet)
		} else {
			b.WriteString(" ratio unresolved")
		}
		b.WriteByte('\n')
		if r.OperatorKnown {
			fmt.Fprintf(&b, "  operator  %s\n", r.Operator)
		}
		switch {
		case r.AffiliateKnown:
			fmt.Fprintf(&b, "  affiliate %s\n", r.Affiliate)
		case r.AffiliateFromCalldata:
			b.WriteString("  affiliate taken from calldata\n")
		}
	} else {
		b.WriteString("no profit split found\n")
	}
	if r.ProxyResolved {
		fmt.Fprintf(&b, "proxy resolved to implementation %s\n", r.ProxyImpl)
	}
	for _, fp := range r.Fingerprints {
		fmt.Fprintf(&b, "fingerprint %s\n", fp)
	}
	if r.TaintSinks > 0 {
		fmt.Fprintf(&b, "calldata taint reaches %d sink(s)\n", r.TaintSinks)
	}
	if len(r.ConstructorStores) > 0 {
		b.WriteString("constructor stores:\n")
		for _, s := range r.ConstructorStores {
			fmt.Fprintf(&b, "  slot %s = 0x%s\n", s.Slot, s.Value.Text(16))
		}
	}
	return b.String()
}

// FormatDisassembly renders instructions one per line, including
// truncation flags.
func FormatDisassembly(ins []Instruction) string {
	var b strings.Builder
	for _, in := range ins {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	return b.String()
}
