package evmstatic_test

import (
	"testing"

	"repro/internal/contracts"
	"repro/internal/evmstatic"
)

// seedCorpus adds the runtime and initcode of every template style to
// the fuzz corpus, so the fuzzer starts from realistic dispatchers.
func seedCorpus(f *testing.F) {
	f.Helper()
	f.Add([]byte{})
	f.Add([]byte{0x60})       // truncated PUSH1
	f.Add([]byte{0x7f, 0x00}) // truncated PUSH32
	for _, style := range []contracts.Style{
		contracts.StyleClaim, contracts.StyleFallback, contracts.StyleNetworkMerge,
	} {
		spec := testSpec(style)
		runtime, err := contracts.Runtime(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(runtime)
		initcode, err := contracts.Deploy(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(initcode)
	}
}

func FuzzDisassemble(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, code []byte) {
		ins := evmstatic.Disassemble(code)
		prev := -1
		covered := 0
		for _, in := range ins {
			if in.PC <= prev {
				t.Fatalf("PC %d after %d: not monotonic", in.PC, prev)
			}
			if in.PC != covered {
				t.Fatalf("instruction at PC %d leaves gap after %d", in.PC, covered)
			}
			covered = in.PC + 1 + len(in.Operand)
			prev = in.PC
		}
		if covered != len(code) {
			t.Fatalf("instructions cover %d bytes of %d", covered, len(code))
		}
	})
}

func FuzzBuildCFG(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, code []byte) {
		g := evmstatic.BuildCFG(code)
		for i, b := range g.Blocks {
			if b.Index != i {
				t.Fatalf("block %d carries index %d", i, b.Index)
			}
			if b.Start >= b.End || b.End > len(g.Instrs) {
				t.Fatalf("block %d has bad range [%d, %d) of %d", i, b.Start, b.End, len(g.Instrs))
			}
			if i > 0 && b.Start != g.Blocks[i-1].End {
				t.Fatalf("block %d does not abut block %d", i, i-1)
			}
			if b.StartPC != g.Instrs[b.Start].PC {
				t.Fatalf("block %d StartPC %d != first instruction PC %d", i, b.StartPC, g.Instrs[b.Start].PC)
			}
			for _, s := range b.Succs {
				if s < 0 || s >= len(g.Blocks) {
					t.Fatalf("block %d has out-of-range successor %d", i, s)
				}
			}
		}
		// The full static analysis must also never panic on junk.
		evmstatic.AnalyzeRuntime(code, nil)
	})
}
