package evmstatic_test

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/contracts"
	"repro/internal/ethtypes"
	"repro/internal/evmstatic"
)

// seedCorpus adds the runtime and initcode of every template style to
// the fuzz corpus, so the fuzzer starts from realistic dispatchers.
func seedCorpus(f *testing.F) {
	f.Helper()
	f.Add([]byte{})
	f.Add([]byte{0x60})       // truncated PUSH1
	f.Add([]byte{0x7f, 0x00}) // truncated PUSH32
	for _, style := range []contracts.Style{
		contracts.StyleClaim, contracts.StyleFallback, contracts.StyleNetworkMerge,
	} {
		spec := testSpec(style)
		runtime, err := contracts.Runtime(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(runtime)
		initcode, err := contracts.Deploy(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(initcode)
	}
}

func FuzzDisassemble(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, code []byte) {
		ins := evmstatic.Disassemble(code)
		prev := -1
		covered := 0
		for _, in := range ins {
			if in.PC <= prev {
				t.Fatalf("PC %d after %d: not monotonic", in.PC, prev)
			}
			if in.PC != covered {
				t.Fatalf("instruction at PC %d leaves gap after %d", in.PC, covered)
			}
			covered = in.PC + 1 + len(in.Operand)
			prev = in.PC
		}
		if covered != len(code) {
			t.Fatalf("instructions cover %d bytes of %d", covered, len(code))
		}
	})
}

func FuzzBuildCFG(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, code []byte) {
		g := evmstatic.BuildCFG(code)
		for i, b := range g.Blocks {
			if b.Index != i {
				t.Fatalf("block %d carries index %d", i, b.Index)
			}
			if b.Start >= b.End || b.End > len(g.Instrs) {
				t.Fatalf("block %d has bad range [%d, %d) of %d", i, b.Start, b.End, len(g.Instrs))
			}
			if i > 0 && b.Start != g.Blocks[i-1].End {
				t.Fatalf("block %d does not abut block %d", i, i-1)
			}
			if b.StartPC != g.Instrs[b.Start].PC {
				t.Fatalf("block %d StartPC %d != first instruction PC %d", i, b.StartPC, g.Instrs[b.Start].PC)
			}
			for _, s := range b.Succs {
				if s < 0 || s >= len(g.Blocks) {
					t.Fatalf("block %d has out-of-range successor %d", i, s)
				}
			}
		}
		// The full static analysis must also never panic on junk.
		evmstatic.AnalyzeRuntime(code, nil)
	})
}

// FuzzFingerprints drives the full multi-fingerprint engine from a
// corpus seeded with every worldgen contract style: the three
// profit-sharing templates plus each scam-shape family and adversarial
// negative. Invariants: the analysis is total over arbitrary bytes,
// family names come sorted, deduplicated, and drawn from the known
// set, a budgeted result is always marked incomplete, and a resolved
// ratio is a valid per-mille.
func FuzzFingerprints(f *testing.F) {
	seedCorpus(f)
	receiver := addr(0xec)
	for _, sink := range contracts.ApprovalSinkSignatures {
		runtime, err := contracts.ApprovalPhisherRuntime(contracts.ApprovalPhisherSpec{
			SinkSignature: sink, Receiver: receiver,
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(runtime)
	}
	pyramid := contracts.PyramidSpec{Levels: []contracts.PyramidLevel{
		{Payee: addr(0x01), Amount: big.NewInt(4_000_000)},
		{Payee: addr(0x02), Amount: big.NewInt(2_000_000)},
	}}
	for _, gen := range []func() ([]byte, error){
		func() ([]byte, error) { return contracts.PyramidRuntime(pyramid) },
		contracts.BenignRouterRuntime,
		contracts.AllowanceHelperRuntime,
		contracts.SlotProxyRuntime,
		func() ([]byte, error) {
			return contracts.AirdropRuntime(contracts.AirdropSpec{
				Owner: addr(0x0a), Recipients: []ethtypes.Address{addr(0x01)}, Amount: big.NewInt(1),
			})
		},
	} {
		runtime, err := gen()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(runtime)
	}
	f.Add(contracts.MinimalProxyRuntime(addr(0x77)))

	known := make(map[string]bool)
	for _, fam := range evmstatic.AllFamilies() {
		known[string(fam)] = true
	}
	resolve := func(ethtypes.Address) ([]byte, error) {
		return nil, errors.New("code unavailable")
	}
	f.Fuzz(func(t *testing.T, code []byte) {
		st := evmstatic.AnalyzeResolved(code, nil, resolve)
		names := evmstatic.FamilyNames(st.Fingerprints)
		for i, name := range names {
			if !known[name] {
				t.Fatalf("unknown family %q in %v", name, names)
			}
			if i > 0 && names[i-1] >= name {
				t.Fatalf("family names not sorted/deduplicated: %v", names)
			}
		}
		if st.Budgeted && !st.Incomplete {
			t.Fatal("Budgeted result not marked Incomplete")
		}
		if st.RatioKnown && (st.OperatorPerMille < 0 || st.OperatorPerMille > 1000) {
			t.Fatalf("resolved ratio %d out of per-mille range", st.OperatorPerMille)
		}
		if st.Summary() == "" {
			t.Fatal("empty summary")
		}
	})
}
