package evmstatic

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/ethabi"
	"repro/internal/ethtypes"
)

// Family identifies one static fingerprint the detection engine can
// recognize. Each family corresponds to a scam shape from the paper or
// its related work; DESIGN.md maps families to citations and the sink
// patterns they match.
type Family string

// Fingerprint families.
const (
	// FamilyApprovalPhish marks contracts whose entrypoints forward
	// victim calldata into allowance-consuming token calls
	// (transferFrom/permit/approve/increaseAllowance/setApprovalForAll)
	// against a constant attacker-controlled spender.
	FamilyApprovalPhish Family = "approval-phishing"
	// FamilyProxy marks EIP-1167 minimal proxies and
	// DELEGATECALL-to-constant patterns that hide implementation logic
	// behind a forwarding contract.
	FamilyProxy Family = "proxy"
	// FamilyPyramid marks Forsage-style fixed payout matrices: several
	// fixed-target value-bearing CALLs with level-indexed constant
	// amounts.
	FamilyPyramid Family = "pyramid-payout"
)

// AllFamilies lists the fingerprint families in report order.
func AllFamilies() []Family {
	return []Family{FamilyApprovalPhish, FamilyProxy, FamilyPyramid}
}

// Fingerprint is one static detection verdict with its evidence.
type Fingerprint struct {
	Family Family
	// Selector is the dispatched entrypoint owning the finding;
	// InFallback marks a fallback-resident finding (Selector zero).
	Selector   [4]byte
	InFallback bool

	// Approval-phishing evidence: the forwarded token-call selector and
	// the constant spender/recipient it grants to.
	SinkSelector [4]byte
	Spender      ethtypes.Address

	// Proxy evidence: the implementation address when it resolved to a
	// constant, and whether the bytecode is the EIP-1167 minimal-proxy
	// pattern.
	Impl      ethtypes.Address
	ImplKnown bool
	Minimal   bool

	// Pyramid evidence: number of fixed payout calls and distinct
	// constant amounts among them.
	Legs   int
	Levels int

	// Detail is a short human-readable evidence summary.
	Detail string
}

// String renders "approval-phishing[0xdeadbeef]: ..." for logs and CLI
// output.
func (f Fingerprint) String() string {
	where := fmt.Sprintf("0x%s", hex.EncodeToString(f.Selector[:]))
	if f.InFallback {
		where = "fallback"
	}
	if f.Family == FamilyProxy {
		where = "runtime"
	}
	return fmt.Sprintf("%s[%s]: %s", f.Family, where, f.Detail)
}

// Approval-phishing sink selectors: the token entrypoints a drainer
// forwards harvested victim consent into (paper §6.1, §7.2; the
// payload-based phishing taxonomy of the related transaction-phishing
// work). Plain transfer(address,uint256) is deliberately absent — a
// benign payment router forwards calldata into transfer without ever
// touching an allowance.
var (
	sinkTransferFrom      = ethabi.Selector("transferFrom(address,address,uint256)")
	sinkApprove           = ethabi.Selector("approve(address,uint256)")
	sinkPermit            = ethabi.Selector("permit(address,address,uint256)")
	sinkIncreaseAllowance = ethabi.Selector("increaseAllowance(address,uint256)")
	sinkSetApprovalAll    = ethabi.Selector("setApprovalForAll(address,bool)")
)

// approvalSink describes one sink selector: its name and which payload
// word carries the spender/recipient the attacker must control.
type approvalSink struct {
	name       string
	spenderArg int
}

func approvalSinks() map[[4]byte]approvalSink {
	return map[[4]byte]approvalSink{
		sinkTransferFrom:      {name: "transferFrom", spenderArg: 1},
		sinkApprove:           {name: "approve", spenderArg: 0},
		sinkPermit:            {name: "permit", spenderArg: 1},
		sinkIncreaseAllowance: {name: "increaseAllowance", spenderArg: 0},
		sinkSetApprovalAll:    {name: "setApprovalForAll", spenderArg: 0},
	}
}

// ApprovalSinkSpenderArg reports whether sel is one of the
// allowance-consuming sink selectors and, if so, which ABI argument
// position carries the spender/recipient. Exported so the dynamic
// prober judges recorded call payloads against the same sink set the
// static engine uses.
func ApprovalSinkSpenderArg(sel [4]byte) (int, bool) {
	s, ok := approvalSinks()[sel]
	return s.spenderArg, ok
}

// isAddressShaped reports a nonzero constant that fits in 160 bits.
func isAddressShaped(v Value) bool {
	return v.isConst() && v.Const.Sign() > 0 && v.Const.BitLen() <= 160
}

// eip1167Prefix/Suffix frame the canonical minimal-proxy runtime:
// prefix ++ 20-byte implementation address ++ suffix.
var (
	eip1167Prefix = []byte{0x36, 0x3d, 0x3d, 0x37, 0x3d, 0x3d, 0x3d, 0x36, 0x3d, 0x73}
	eip1167Suffix = []byte{0x5a, 0xf4, 0x3d, 0x82, 0x80, 0x3e, 0x90, 0x3d, 0x91, 0x60, 0x2b, 0x57, 0xfd, 0x5b, 0xf3}
)

// EIP1167Runtime builds the canonical 45-byte minimal-proxy runtime
// forwarding every call to impl — the exact byte string ParseEIP1167
// recognizes.
func EIP1167Runtime(impl ethtypes.Address) []byte {
	out := make([]byte, 0, len(eip1167Prefix)+20+len(eip1167Suffix))
	out = append(out, eip1167Prefix...)
	out = append(out, impl[:]...)
	out = append(out, eip1167Suffix...)
	return out
}

// ParseEIP1167 recognizes the canonical minimal-proxy runtime and
// returns the embedded implementation address.
func ParseEIP1167(code []byte) (ethtypes.Address, bool) {
	if len(code) != len(eip1167Prefix)+20+len(eip1167Suffix) {
		return ethtypes.Address{}, false
	}
	if !bytes.HasPrefix(code, eip1167Prefix) || !bytes.HasSuffix(code, eip1167Suffix) {
		return ethtypes.Address{}, false
	}
	var impl ethtypes.Address
	copy(impl[:], code[len(eip1167Prefix):len(eip1167Prefix)+20])
	return impl, true
}

// entryPoint pairs a fingerprint location with its CFG entry block.
type entryPoint struct {
	sel        [4]byte
	inFallback bool
	block      int
}

// detectFingerprints runs the three fingerprint analyzers over a
// finished abstract interpretation.
func detectFingerprints(code []byte, a *analysis) []Fingerprint {
	g := a.g
	var out []Fingerprint

	var entries []entryPoint
	for _, e := range selectorOrder(a) {
		entries = append(entries, entryPoint{sel: e.sel, block: e.target})
	}
	if a.fallbackPC >= 0 {
		if fb, ok := g.BlockAt(a.fallbackPC); ok {
			entries = append(entries, entryPoint{inFallback: true, block: fb})
		}
	}

	for _, ep := range entries {
		body := reachableFrom(g, ep.block)
		out = append(out, detectApprovalPhish(a, ep, body)...)
		if fp, ok := detectPyramid(g, a, ep, body); ok {
			out = append(out, fp)
		}
	}
	out = append(out, detectProxy(code, a)...)
	return out
}

// detectApprovalPhish flags calls inside one entrypoint's body that
// forward calldata-derived data into an allowance-consuming token call
// whose spender argument is a hardcoded address. All three legs must
// hold: the payload selector is a known sink, the spender position is a
// constant address, and the call target or payload carries calldata
// taint (the victim-supplied token/owner). A benign allowance helper
// whose spender also comes from calldata fails the constant-spender
// leg; a multicall forwarding opaque victim payloads fails the
// known-selector leg.
func detectApprovalPhish(a *analysis, ep entryPoint, body map[int]bool) []Fingerprint {
	sinks := approvalSinks()
	var out []Fingerprint
	for _, c := range sortedCalls(a) {
		if !body[c.block] || c.kind == callDelegate || !c.paySelKnown {
			continue
		}
		sink, ok := sinks[c.paySel]
		if !ok {
			continue
		}
		if sink.spenderArg >= len(c.args) || !isAddressShaped(c.args[sink.spenderArg]) {
			continue
		}
		if !c.payloadTainted && !c.to.Tainted {
			continue
		}
		spender := ethtypes.BytesToAddress(c.args[sink.spenderArg].Const.Bytes())
		out = append(out, Fingerprint{
			Family:       FamilyApprovalPhish,
			Selector:     ep.sel,
			InFallback:   ep.inFallback,
			SinkSelector: c.paySel,
			Spender:      spender,
			Detail: fmt.Sprintf("forwards calldata into %s with constant spender %s",
				sink.name, spender),
		})
	}
	return out
}

// detectPyramid flags the Forsage payout shape inside one entrypoint:
// a path an arbitrary value-bearing caller can complete that fans the
// deposit out over at least three fixed-target calls with level-indexed
// constant amounts. Fixed targets are push constants or single storage
// slots (the matrix table); requiring at least two distinct amounts
// separates the level schedule from equal-share airdrops, and the
// success-reachability check rejects owner-gated distribution helpers.
func detectPyramid(g *CFG, a *analysis, ep entryPoint, body map[int]bool) (Fingerprint, bool) {
	if !successReachable(g, a.edgeConds, ep.block) {
		return Fingerprint{}, false
	}
	legs := 0
	amounts := make(map[string]bool)
	for _, c := range sortedCalls(a) {
		if !body[c.block] || c.kind != callPlain {
			continue
		}
		fixedTarget := isAddressShaped(c.to) || (c.to.Kind == KSLoad && c.to.Aux != nil)
		if !fixedTarget {
			continue
		}
		if !c.value.isConst() || c.value.Const.Sign() <= 0 {
			continue
		}
		legs++
		amounts[c.value.Const.Text(16)] = true
	}
	if legs < 3 || len(amounts) < 2 {
		return Fingerprint{}, false
	}
	return Fingerprint{
		Family:     FamilyPyramid,
		Selector:   ep.sel,
		InFallback: ep.inFallback,
		Legs:       legs,
		Levels:     len(amounts),
		Detail: fmt.Sprintf("%d fixed payout calls over %d constant amounts",
			legs, len(amounts)),
	}, true
}

// detectProxy flags forwarding shapes: the EIP-1167 minimal-proxy byte
// pattern, and DELEGATECALLs whose target is a push constant or a
// constant storage slot (upgradeable-proxy style). Storage resolution
// turns slot targets into concrete implementation addresses.
func detectProxy(code []byte, a *analysis) []Fingerprint {
	if impl, ok := ParseEIP1167(code); ok {
		return []Fingerprint{{
			Family:    FamilyProxy,
			Impl:      impl,
			ImplKnown: true,
			Minimal:   true,
			Detail:    fmt.Sprintf("EIP-1167 minimal proxy for %s", impl),
		}}
	}
	var out []Fingerprint
	for _, c := range sortedCalls(a) {
		if c.kind != callDelegate {
			continue
		}
		switch {
		case isAddressShaped(c.to):
			impl := ethtypes.BytesToAddress(c.to.Const.Bytes())
			out = append(out, Fingerprint{
				Family:    FamilyProxy,
				Impl:      impl,
				ImplKnown: true,
				Detail:    fmt.Sprintf("delegatecall to constant %s", impl),
			})
		case c.to.Kind == KSLoad && c.to.Aux != nil:
			out = append(out, Fingerprint{
				Family: FamilyProxy,
				Detail: fmt.Sprintf("delegatecall to storage slot %s", c.to.Aux),
			})
		}
	}
	return out
}

// HasFamily reports whether any fingerprint of the given family is
// present.
func HasFamily(fps []Fingerprint, fam Family) bool {
	for _, fp := range fps {
		if fp.Family == fam {
			return true
		}
	}
	return false
}

// FamilyNames returns the sorted, deduplicated family labels of fps —
// the tag set the pipeline attaches to dataset contract records.
func FamilyNames(fps []Fingerprint) []string {
	seen := make(map[string]bool)
	for _, fp := range fps {
		seen[string(fp.Family)] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// maxProxyDepth bounds proxy-chain resolution: a proxy pointing at a
// proxy pointing at the implementation is real (clone factories over
// upgradeable targets); unbounded chains are adversarial.
const maxProxyDepth = 4

// CodeResolver supplies deployed runtime bytecode for proxy-implementation
// resolution (chain state or an RPC code fetch).
type CodeResolver func(addr ethtypes.Address) ([]byte, error)

// AnalyzeResolved analyzes runtime bytecode and, when the code is a
// proxy with a constant implementation, follows the chain (bounded by
// maxProxyDepth) so drainer logic cannot hide behind a forwarder: the
// returned analysis describes the final implementation, with the proxy
// fingerprints of every hop prepended and ProxyImpl recording the
// resolved address. Without a resolver — or when the implementation
// address stayed symbolic — the proxy's own (empty) analysis is
// returned with the proxy fingerprint attached.
func AnalyzeResolved(code []byte, storage Storage, resolve CodeResolver) *StaticAnalysis {
	var hops []Fingerprint
	cur := code
	curStorage := storage
	for depth := 0; ; depth++ {
		rep := AnalyzeRuntime(cur, curStorage)
		proxies := proxyPrints(rep.Fingerprints)
		if len(proxies) == 0 || resolve == nil || depth >= maxProxyDepth {
			rep.Fingerprints = append(hops, rep.Fingerprints...)
			if len(hops) > 0 {
				rep.ProxyResolved = true
				rep.ProxyImpl = hops[len(hops)-1].Impl
			}
			return rep
		}
		next := proxies[0]
		if !next.ImplKnown {
			rep.Fingerprints = append(hops, rep.Fingerprints...)
			return rep
		}
		implCode, err := resolve(next.Impl)
		if err != nil || len(implCode) == 0 {
			rep.Fingerprints = append(hops, rep.Fingerprints...)
			return rep
		}
		hops = append(hops, proxies...)
		cur = implCode
		// The implementation runs under the proxy's storage via
		// DELEGATECALL, so the proxy's storage environment carries over.
		curStorage = storage
	}
}

func proxyPrints(fps []Fingerprint) []Fingerprint {
	var out []Fingerprint
	for _, fp := range fps {
		if fp.Family == FamilyProxy {
			out = append(out, fp)
		}
	}
	return out
}

