package evmstatic

import (
	"fmt"
	"sort"

	"repro/internal/ethtypes"
	"repro/internal/evm"
)

// PaperRatiosPM is the set of operator profit shares (in per-mille)
// observed across the paper's dataset (§4.3 and Table 3, 10%–40%).
// Extraction maps recovered split constants back onto this set.
var PaperRatiosPM = []int64{100, 125, 150, 175, 200, 250, 300, 330, 400}

// RatioInPaperSet reports whether pm is one of the documented operator
// shares.
func RatioInPaperSet(pm int64) bool {
	for _, r := range PaperRatiosPM {
		if r == pm {
			return true
		}
	}
	return false
}

// splitFacts is what findSplit recovers from the payout calls of one
// function body.
type splitFacts struct {
	found bool
	// pm is the operator share in per-mille; ratioKnown is false when
	// the MUL/DIV shape was present but the ratio stayed symbolic.
	pm         int64
	ratioKnown bool
	operator   ethtypes.Address
	opKnown    bool
	affiliate  ethtypes.Address
	affKnown   bool
	affFromCD  bool
}

// reachableFrom collects the block set reachable from entry over all
// known edges.
func reachableFrom(g *CFG, entry int) map[int]bool {
	seen := map[int]bool{entry: true}
	stack := []int{entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// successReachable reports whether a halting success (STOP, RETURN, or
// running off the end of the code) is reachable from entry without
// taking an edge that requires zero call value or a privileged caller —
// the static mirror of the dynamic prober's "send value from an
// arbitrary EOA and see whether execution succeeds".
func successReachable(g *CFG, conds map[[2]int]edgeCond, entry int) bool {
	seen := map[int]bool{entry: true}
	stack := []int{entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blockSucceeds(g, b) {
			return true
		}
		for _, s := range g.Blocks[b].Succs {
			if seen[s] {
				continue
			}
			if c := conds[[2]int{b, s}]; c == condZeroValue || c == condCaller {
				continue
			}
			seen[s] = true
			stack = append(stack, s)
		}
	}
	return false
}

// blockSucceeds reports whether the block halts successfully.
func blockSucceeds(g *CFG, bi int) bool {
	b := g.Blocks[bi]
	last := g.Instrs[b.End-1]
	switch last.Op {
	case evm.STOP, evm.RETURN:
		return true
	case evm.REVERT, evm.JUMP, evm.JUMPI:
		return false
	}
	if last.Truncated {
		// A truncated PUSH pushes what exists and falls off the end of
		// the code: an implicit STOP.
		return true
	}
	// Running off the end of the code is an implicit STOP; anything
	// else (unknown opcode, mid-code fallthrough) is not a halt here.
	return bi == len(g.Blocks)-1 && !terminates(last)
}

// findSplit scans the payout calls inside a function's block set for
// the profit-sharing pair: one CALL forwarding callvalue*ratio/1000 and
// one forwarding the remainder.
func findSplit(a *analysis, blocks map[int]bool) splitFacts {
	var share, rem *callSite
	for _, c := range sortedCalls(a) {
		if !blocks[c.block] {
			continue
		}
		c := c
		switch c.value.Kind {
		case KShare:
			if share == nil {
				share = &c
			}
		case KRemainder:
			if rem == nil {
				rem = &c
			}
		}
	}
	if share == nil || rem == nil {
		return splitFacts{}
	}
	f := splitFacts{found: true}
	if share.value.Aux != nil && share.value.Aux.IsInt64() {
		// A share above 1000‰ exceeds the forwarded value: whatever
		// matched the value*ratio/1000 shape, it is not a profit split.
		if pm := share.value.Aux.Int64(); pm >= 0 && pm <= 1000 {
			f.pm = pm
			f.ratioKnown = true
		} else {
			return splitFacts{}
		}
	}
	if share.to.isConst() {
		f.operator = ethtypes.BytesToAddress(share.to.Const.Bytes())
		f.opKnown = true
	}
	switch {
	case rem.to.isConst():
		f.affiliate = ethtypes.BytesToAddress(rem.to.Const.Bytes())
		f.affKnown = true
	case rem.to.Kind == KCallData:
		f.affFromCD = true
	}
	return f
}

// sortedCalls returns the recorded call sites in code order.
func sortedCalls(a *analysis) []callSite {
	out := make([]callSite, 0, len(a.calls))
	for _, c := range a.calls {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pc < out[j].pc })
	return out
}

// dedupedStores collapses the recorded constant SSTOREs into per-slot
// assignments, last write winning, in slot order.
func dedupedStores(a *analysis) []StorageSlot {
	bySlot := make(map[string]StorageSlot)
	var order []string
	for _, s := range a.stores {
		key := s.slot.Text(16)
		if _, ok := bySlot[key]; !ok {
			order = append(order, key)
		}
		bySlot[key] = StorageSlot{Slot: s.slot, Value: s.val}
	}
	out := make([]StorageSlot, 0, len(order))
	for _, key := range order {
		out = append(out, bySlot[key])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot.Cmp(out[j].Slot) < 0 })
	return out
}

// carveRuntime recovers the deployed runtime from initcode by matching
// the constructor's constant CODECOPY against its RETURN region.
func carveRuntime(initcode []byte, a *analysis) ([]byte, error) {
	for _, ret := range a.returns {
		if ret.size <= 0 {
			continue
		}
		for _, cp := range a.copies {
			if cp.memOff > ret.off || ret.off+ret.size > cp.memOff+cp.size {
				continue
			}
			start := cp.codeOff + (ret.off - cp.memOff)
			end := start + ret.size
			if start < 0 || end > int64(len(initcode)) {
				continue
			}
			return initcode[start:end], nil
		}
	}
	return nil, fmt.Errorf("evmstatic: no constant CODECOPY/RETURN pair found in initcode")
}

// selectorOrder returns the dispatch-recovered selector edges in code
// order of the deciding JUMPI, deduplicating selectors.
func selectorOrder(a *analysis) []selEdge {
	edges := make([]selEdge, 0, len(a.selEdges))
	for _, e := range a.selEdges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].pc < edges[j].pc })
	var out []selEdge
	seen := make(map[[4]byte]bool)
	for _, e := range edges {
		if !seen[e.sel] {
			seen[e.sel] = true
			out = append(out, e)
		}
	}
	return out
}
