package evmstatic_test

import (
	"bytes"
	"fmt"
	"math/big"
	"testing"

	"repro/internal/contracts"
	"repro/internal/evm"
	"repro/internal/evmstatic"
)

// BenchmarkStaticAnalyze measures the full static engine —
// disassembly, CFG, abstract interpretation, and all three fingerprint
// analyzers — over representative bytecode sizes: the 45-byte minimal
// proxy, the real contract templates, and the 21KB adversarial chain
// that exhausts the visit budget. scripts/check.sh captures the
// results as BENCH_static.json.
func BenchmarkStaticAnalyze(b *testing.B) {
	phisher, err := contracts.ApprovalPhisherRuntime(contracts.ApprovalPhisherSpec{Receiver: addr(0xec)})
	if err != nil {
		b.Fatal(err)
	}
	pyramid, err := contracts.PyramidRuntime(contracts.PyramidSpec{Levels: []contracts.PyramidLevel{
		{Payee: addr(0x01), Amount: big.NewInt(4_000_000)},
		{Payee: addr(0x02), Amount: big.NewInt(2_000_000)},
		{Payee: addr(0x03), Amount: big.NewInt(1_000_000)},
	}})
	if err != nil {
		b.Fatal(err)
	}
	claim, err := contracts.Runtime(testSpec(contracts.StyleClaim))
	if err != nil {
		b.Fatal(err)
	}
	merge, err := contracts.Runtime(testSpec(contracts.StyleNetworkMerge))
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		code []byte
	}{
		{"minimal-proxy", contracts.MinimalProxyRuntime(addr(0x77))},
		{"approval-phisher", phisher},
		{"claim-style", claim},
		{"pyramid", pyramid},
		{"networkmerge-style", merge},
		{"pathological-21k", bytes.Repeat([]byte{evm.JUMPDEST}, 21_000)},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%s/%dB", c.name, len(c.code)), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(c.code)))
			var fps int
			for i := 0; i < b.N; i++ {
				st := evmstatic.AnalyzeRuntime(c.code, nil)
				fps = len(st.Fingerprints)
			}
			b.ReportMetric(float64(fps), "fingerprints")
		})
	}
}
