// Package evmstatic implements static analysis of EVM runtime bytecode:
// a disassembler, a control-flow-graph builder, and an abstract stack
// interpreter with constant propagation. Together they recover, without
// executing a single instruction, the facts the dynamic prober in
// internal/contracts observes by running code in the toy EVM: dispatched
// function selectors, payability, hardcoded payout addresses, and the
// per-mille profit-sharing constants of the paper's Table 3.
//
// The engine is deliberately storage- and memory-free: SLOAD resolves
// only through an optional constant storage environment (recovered from
// constructor SSTOREs or read from deployed state), and memory is not
// modeled at all beyond the CODECOPY/RETURN pairing needed to carve the
// runtime out of initcode. DESIGN.md discusses the soundness limits.
package evmstatic

import (
	"fmt"

	"repro/internal/evm"
)

// opNames maps non-range opcodes to their mnemonics.
var opNames = map[byte]string{
	evm.STOP: "STOP", evm.ADD: "ADD", evm.MUL: "MUL", evm.SUB: "SUB",
	evm.DIV: "DIV", evm.MOD: "MOD", evm.EXP: "EXP", evm.LT: "LT",
	evm.GT: "GT", evm.EQ: "EQ", evm.ISZERO: "ISZERO", evm.AND: "AND",
	evm.OR: "OR", evm.XOR: "XOR", evm.NOT: "NOT", evm.SHL: "SHL",
	evm.SHR: "SHR", evm.ADDRESS: "ADDRESS", evm.BALANCE: "BALANCE",
	evm.CALLER: "CALLER", evm.CALLVALUE: "CALLVALUE",
	evm.CALLDATALOAD: "CALLDATALOAD", evm.CALLDATASIZE: "CALLDATASIZE",
	evm.CALLDATACOPY: "CALLDATACOPY", evm.CODESIZE: "CODESIZE",
	evm.CODECOPY: "CODECOPY", evm.RETURNDATASIZE: "RETURNDATASIZE",
	evm.RETURNDATACOPY: "RETURNDATACOPY", evm.TIMESTAMP: "TIMESTAMP",
	evm.NUMBER: "NUMBER", evm.SELFBALANCE: "SELFBALANCE", evm.POP: "POP",
	evm.MLOAD: "MLOAD", evm.MSTORE: "MSTORE", evm.SLOAD: "SLOAD",
	evm.SSTORE: "SSTORE", evm.JUMP: "JUMP", evm.JUMPI: "JUMPI",
	evm.PC: "PC", evm.GAS: "GAS", evm.JUMPDEST: "JUMPDEST",
	evm.PUSH0: "PUSH0", evm.CALL: "CALL", evm.RETURN: "RETURN",
	evm.REVERT: "REVERT", evm.CREATE: "CREATE",
	evm.DELEGATECALL: "DELEGATECALL", evm.STATICCALL: "STATICCALL",
}

// Instruction is one decoded opcode.
type Instruction struct {
	PC       int
	Op       byte
	Mnemonic string
	// Operand holds PUSH immediates.
	Operand []byte
	// Truncated marks a PUSH whose operand runs past the end of the
	// code. The operand keeps the bytes that exist; analyses must not
	// assume the instruction completes (the CFG builder ends the basic
	// block here).
	Truncated bool
}

// String renders "0042: PUSH4 0xa9059cbb".
func (in Instruction) String() string {
	if in.Truncated {
		return fmt.Sprintf("%04x: %s 0x%x !truncated", in.PC, in.Mnemonic, in.Operand)
	}
	if len(in.Operand) > 0 {
		return fmt.Sprintf("%04x: %s 0x%x", in.PC, in.Mnemonic, in.Operand)
	}
	return fmt.Sprintf("%04x: %s", in.PC, in.Mnemonic)
}

// Disassemble decodes runtime bytecode into instructions. Unknown
// opcodes decode as "INVALID(0xnn)" without stopping, since analysts
// routinely meet junk bytes in real deployments. A PUSH whose operand
// extends past the end of the code keeps the bytes that exist and is
// flagged Truncated.
func Disassemble(code []byte) []Instruction {
	var out []Instruction
	for pc := 0; pc < len(code); pc++ {
		op := code[pc]
		in := Instruction{PC: pc, Op: op}
		switch {
		case op >= evm.PUSH1 && op <= evm.PUSH1+31:
			n := int(op-evm.PUSH1) + 1
			in.Mnemonic = fmt.Sprintf("PUSH%d", n)
			end := pc + 1 + n
			if end > len(code) {
				end = len(code)
				in.Truncated = true
			}
			in.Operand = append([]byte{}, code[pc+1:end]...)
			pc = end - 1
		case op >= evm.DUP1 && op <= evm.DUP1+15:
			in.Mnemonic = fmt.Sprintf("DUP%d", op-evm.DUP1+1)
		case op >= evm.SWAP1 && op <= evm.SWAP1+15:
			in.Mnemonic = fmt.Sprintf("SWAP%d", op-evm.SWAP1+1)
		case op >= evm.LOG0 && op <= evm.LOG0+4:
			in.Mnemonic = fmt.Sprintf("LOG%d", op-evm.LOG0)
		default:
			if name, ok := opNames[op]; ok {
				in.Mnemonic = name
			} else {
				in.Mnemonic = fmt.Sprintf("INVALID(0x%02x)", op)
			}
		}
		out = append(out, in)
	}
	return out
}
