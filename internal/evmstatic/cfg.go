package evmstatic

import (
	"math/big"

	"repro/internal/evm"
)

// Block is one basic block: a maximal straight-line instruction run.
// Start/End index into the CFG's instruction slice; successors are block
// indices. Jump successors beyond the syntactically obvious ones (a PUSH
// immediately preceding the JUMP) are filled in by the abstract
// interpreter as it propagates constants.
type Block struct {
	Index      int
	Start, End int // instruction index range [Start, End)
	StartPC    int
	Succs      []int
	Reachable  bool
}

// CFG is the control-flow graph of one bytecode blob.
type CFG struct {
	Code      []byte
	Instrs    []Instruction
	Blocks    []Block
	blockByPC map[int]int // StartPC → block index
}

// terminates reports whether in ends a basic block with no fallthrough.
func terminates(in Instruction) bool {
	if in.Truncated {
		// A truncated PUSH is the last instruction of the code; whatever
		// it would have pushed does not exist, so nothing can follow.
		return true
	}
	switch in.Op {
	case evm.STOP, evm.JUMP, evm.RETURN, evm.REVERT:
		return true
	}
	// Unknown opcodes halt execution like INVALID.
	return !knownOp(in.Op)
}

// knownOp reports whether the interpreter subset implements op.
func knownOp(op byte) bool {
	switch {
	case op >= evm.PUSH1 && op <= evm.PUSH1+31,
		op >= evm.DUP1 && op <= evm.DUP1+15,
		op >= evm.SWAP1 && op <= evm.SWAP1+15,
		op >= evm.LOG0 && op <= evm.LOG0+4:
		return true
	}
	_, ok := opNames[op]
	return ok
}

// BuildCFG disassembles code and splits it into basic blocks. Blocks
// start at PC 0, at every JUMPDEST, and after every terminator
// (JUMP/JUMPI/STOP/RETURN/REVERT, unknown opcodes, truncated PUSHes).
// Fallthrough edges and directly-preceded PUSH jump targets are resolved
// here; the abstract interpreter adds the rest via AddEdge.
func BuildCFG(code []byte) *CFG {
	g := &CFG{
		Code:      append([]byte(nil), code...),
		Instrs:    Disassemble(code),
		blockByPC: make(map[int]int),
	}
	if len(g.Instrs) == 0 {
		return g
	}

	leader := make([]bool, len(g.Instrs))
	leader[0] = true
	for i, in := range g.Instrs {
		if in.Op == evm.JUMPDEST {
			leader[i] = true
		}
		if (terminates(in) || in.Op == evm.JUMPI) && i+1 < len(g.Instrs) {
			leader[i+1] = true
		}
	}

	start := 0
	for i := 1; i <= len(g.Instrs); i++ {
		if i == len(g.Instrs) || leader[i] {
			b := Block{
				Index:   len(g.Blocks),
				Start:   start,
				End:     i,
				StartPC: g.Instrs[start].PC,
			}
			g.blockByPC[b.StartPC] = b.Index
			g.Blocks = append(g.Blocks, b)
			start = i
		}
	}

	for i := range g.Blocks {
		b := &g.Blocks[i]
		last := g.Instrs[b.End-1]
		switch {
		case last.Op == evm.JUMP && !last.Truncated:
			if t, ok := g.syntacticTarget(b); ok {
				g.AddEdge(b.Index, t)
			}
		case last.Op == evm.JUMPI && !last.Truncated:
			if t, ok := g.syntacticTarget(b); ok {
				g.AddEdge(b.Index, t)
			}
			if i+1 < len(g.Blocks) {
				g.AddEdge(b.Index, i+1)
			}
		case !terminates(last):
			if i+1 < len(g.Blocks) {
				g.AddEdge(b.Index, i+1)
			}
		}
	}
	g.MarkReachable()
	return g
}

// syntacticTarget resolves a jump whose target is pushed by the
// immediately preceding instruction.
func (g *CFG) syntacticTarget(b *Block) (int, bool) {
	if b.End-b.Start < 2 {
		return 0, false
	}
	prev := g.Instrs[b.End-2]
	if prev.Op < evm.PUSH1 || prev.Op > evm.PUSH1+31 || prev.Truncated {
		return 0, false
	}
	return g.JumpTargetBlock(new(big.Int).SetBytes(prev.Operand))
}

// JumpTargetBlock maps a constant jump target to the block starting at
// that PC, requiring a JUMPDEST there as the EVM does.
func (g *CFG) JumpTargetBlock(target *big.Int) (int, bool) {
	if !target.IsInt64() {
		return 0, false
	}
	idx, ok := g.blockByPC[int(target.Int64())]
	if !ok {
		return 0, false
	}
	if first := g.Instrs[g.Blocks[idx].Start]; first.Op != evm.JUMPDEST {
		return 0, false
	}
	return idx, true
}

// AddEdge records a successor edge, deduplicating.
func (g *CFG) AddEdge(from, to int) {
	for _, s := range g.Blocks[from].Succs {
		if s == to {
			return
		}
	}
	g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
}

// MarkReachable recomputes reachability from the entry block over the
// currently known edges. Unreachable blocks are typically embedded data
// (a constructor's runtime payload) or dead code.
func (g *CFG) MarkReachable() {
	for i := range g.Blocks {
		g.Blocks[i].Reachable = false
	}
	if len(g.Blocks) == 0 {
		return
	}
	stack := []int{0}
	g.Blocks[0].Reachable = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Blocks[b].Succs {
			if !g.Blocks[s].Reachable {
				g.Blocks[s].Reachable = true
				stack = append(stack, s)
			}
		}
	}
}

// BlockAt returns the index of the block starting at pc.
func (g *CFG) BlockAt(pc int) (int, bool) {
	idx, ok := g.blockByPC[pc]
	return idx, ok
}
