package evmstatic

import (
	"math/big"

	"repro/internal/evm"
)

// Kind classifies an abstract stack value. Beyond plain constants the
// lattice tracks the handful of symbolic shapes the drainer templates
// (and Solidity dispatchers generally) compute from the call
// environment, so the extractor can recognize selector dispatch,
// CALLVALUE guards, and the MUL/DIV profit-split idiom without
// executing anything.
type Kind uint8

// Abstract value kinds.
const (
	KUnknown Kind = iota
	// KConst is a fully known 256-bit constant (Const set).
	KConst
	// KCallValue is msg.value.
	KCallValue
	// KCaller is msg.sender.
	KCaller
	// KCallDataSize is calldatasize().
	KCallDataSize
	// KCallData is calldataload(Aux) for a constant offset.
	KCallData
	// KSelector is the dispatched selector: shr(224, calldataload(0))
	// or the DIV/AND equivalent of older compilers.
	KSelector
	// KSLoad is sload(Aux) left symbolic because no storage environment
	// covers the slot.
	KSLoad
	// KShareNum is callvalue*ratio; Aux is the ratio when constant, nil
	// when the ratio itself came from unresolved storage.
	KShareNum
	// KShare is callvalue*ratio/den normalized to per-mille: the
	// operator's cut. Aux is the per-mille ratio (nil when unresolved).
	KShare
	// KRemainder is callvalue-share: the affiliate's cut. Aux is the
	// complementary per-mille ratio (nil when unresolved).
	KRemainder
	// KSelectorCmp is the condition selector == Sel (Neg: !=).
	KSelectorCmp
	// KValueZero is the condition callvalue == 0 (Neg: != 0).
	KValueZero
	// KCallerCmp is the condition caller == Const (Neg: !=).
	KCallerCmp
	// KShortCalldata is the condition calldatasize < 4 (Neg: >= 4), the
	// dispatcher's fallback test.
	KShortCalldata
)

// Value is one abstract stack slot.
type Value struct {
	Kind  Kind
	Const *big.Int // concrete value, when known
	Aux   *big.Int // kind-specific: calldata offset, storage slot, or ratio
	Sel   [4]byte  // KSelectorCmp
	Neg   bool     // negated condition kinds
	// Tainted marks values derived (through any chain of operations)
	// from call data: the dataflow fact the approval-phishing
	// fingerprint reads at CALL/SSTORE/LOG sinks.
	Tainted bool
}

func unknown() Value           { return Value{Kind: KUnknown} }
func taintedUnknown() Value    { return Value{Kind: KUnknown, Tainted: true} }
func konst(v *big.Int) Value   { return Value{Kind: KConst, Const: v} }
func konstInt64(v int64) Value { return konst(big.NewInt(v)) }
func (v Value) isConst() bool  { return v.Kind == KConst && v.Const != nil }
func (v Value) constEq(x int64) bool {
	return v.isConst() && v.Const.IsInt64() && v.Const.Int64() == x
}

func bigEq(a, b *big.Int) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Cmp(b) == 0
}

func valueEq(a, b Value) bool {
	return a.Kind == b.Kind && a.Neg == b.Neg && a.Sel == b.Sel &&
		a.Tainted == b.Tainted &&
		bigEq(a.Const, b.Const) && bigEq(a.Aux, b.Aux)
}

// joinValue is the lattice join: equal values stay, anything else
// degrades to unknown. Taint joins upward: a value that may be
// calldata-derived on either path stays tainted.
func joinValue(a, b Value) Value {
	if valueEq(a, b) {
		return a
	}
	if a.Kind == b.Kind && a.Neg == b.Neg && a.Sel == b.Sel &&
		bigEq(a.Const, b.Const) && bigEq(a.Aux, b.Aux) {
		// Same value, differing taint.
		a.Tainted = true
		return a
	}
	return Value{Kind: KUnknown, Tainted: a.Tainted || b.Tainted}
}

// joinStack joins two abstract stacks aligned at the top; depth
// mismatches (merging paths that carry different residue below the
// live region) pad with unknowns.
func joinStack(a, b []Value) []Value {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]Value, n)
	for i := 0; i < n; i++ {
		av, bv := unknown(), unknown()
		if i < len(a) {
			av = a[len(a)-1-i]
		}
		if i < len(b) {
			bv = b[len(b)-1-i]
		}
		out[n-1-i] = joinValue(av, bv)
	}
	return out
}

func stackEq(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !valueEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// memCell is one abstract memory word at a constant offset. A later
// overlapping store can invalidate the tail of the word without
// touching its head — the Solidity calldata-encoding idiom writes the
// 4-byte selector word first and the first argument 4 bytes in — so
// valid records how many leading bytes of val are still accurate.
type memCell struct {
	val   Value
	valid int // leading bytes of val still accurate, 1..32
}

// amem is the abstract memory: word values at constant byte offsets.
// Stores at unknown offsets clobber the whole map (sound for constant
// recovery: we never report a stale word).
type amem map[int64]memCell

func cloneMem(m amem) amem {
	out := make(amem, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// joinMem intersects two memories key-wise; entries that join to an
// untainted unknown are dropped to keep the state small.
func joinMem(a, b amem) amem {
	out := make(amem)
	for k, ac := range a {
		bc, ok := b[k]
		if !ok {
			continue
		}
		j := memCell{val: joinValue(ac.val, bc.val), valid: ac.valid}
		if bc.valid < j.valid {
			j.valid = bc.valid
		}
		if j.val.Kind != KUnknown || j.val.Tainted {
			out[k] = j
		}
	}
	return out
}

func memEq(a, b amem) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ac := range a {
		bc, ok := b[k]
		if !ok || ac.valid != bc.valid || !valueEq(ac.val, bc.val) {
			return false
		}
	}
	return true
}

// clobberRange invalidates every memory entry overlapping [off,
// off+size). An entry starting before off keeps its head bytes; an
// entry starting inside the range is removed outright.
func clobberRange(m amem, off, size int64) {
	for k, c := range m {
		switch {
		case k >= off && k < off+size:
			delete(m, k)
		case k < off && k+int64(c.valid) > off:
			c.valid = int(off - k)
			m[k] = c
		}
	}
}

// storeWord writes one 32-byte word at a constant offset.
func storeWord(m amem, off int64, v Value) {
	clobberRange(m, off, 32)
	m[off] = memCell{val: v, valid: 32}
}

// loadWord reads a full word at a constant offset; partial words read
// as unknown (tainted if the cell was).
func loadWord(m amem, off int64) Value {
	if c, ok := m[off]; ok {
		if c.valid == 32 {
			return c.val
		}
		return Value{Kind: KUnknown, Tainted: c.val.Tainted}
	}
	return unknown()
}

// flowState is the abstract machine state flowing into a block: the
// operand stack plus the constant-offset memory image.
type flowState struct {
	stack []Value
	mem   amem
}

// edgeCond labels what a CFG edge requires of the call environment.
type edgeCond uint8

// Edge conditions relevant to extraction.
const (
	condNone edgeCond = iota
	// condZeroValue: the edge is taken only when callvalue == 0.
	condZeroValue
	// condCaller: the edge is taken only by one specific caller.
	condCaller
)

// callKind distinguishes the message-call variants at a call site.
type callKind uint8

// Call variants.
const (
	callPlain callKind = iota
	callDelegate
	callStatic
)

// callSite is a recorded CALL/DELEGATECALL/STATICCALL with its abstract
// target, value, and — when the input region has constant bounds — the
// outgoing payload recovered from abstract memory: the 4-byte selector
// of the nested call and the ABI-encoded word arguments after it.
type callSite struct {
	pc    int
	block int
	kind  callKind
	to    Value
	value Value

	// inKnown marks constant input-region bounds.
	inKnown       bool
	inOff, inSize int64
	// paySelKnown marks a recovered constant payload selector.
	paySelKnown bool
	paySel      [4]byte
	// args are the payload words after the selector, position-joined
	// across visits; bounded by maxPayloadArgs.
	args []Value
	// payloadTainted reports calldata-derived bytes anywhere in the
	// input region (including beyond the modeled args).
	payloadTainted bool
}

// maxPayloadArgs bounds how many payload words a call site models.
const maxPayloadArgs = 8

// storeSite is a recorded SSTORE with constant slot and value.
type storeSite struct {
	slot, val *big.Int
}

// copySite is a recorded CODECOPY with constant operands.
type copySite struct {
	memOff, codeOff, size int64
}

// returnSite is a recorded RETURN with constant operands.
type returnSite struct {
	off, size int64
}

// sinkSite is a program point where calldata-derived data reached a
// dataflow sink (a message call, an SSTORE, or a LOG topic).
type sinkSite struct {
	pc int
	op byte
}

// selEdge records "jumping to block Target means the dispatched
// selector equals Sel".
type selEdge struct {
	sel    [4]byte
	target int
	pc     int // PC of the deciding JUMPI, for code-order selector listing
}

// Storage supplies constant storage words to the abstract interpreter.
// Implementations come from constructor-recovered stores
// (AnalyzeDeploy) or from deployed chain state.
type Storage func(slot *big.Int) (*big.Int, bool)

// NewStorage builds a Storage from explicit slot/value pairs.
func NewStorage(pairs []StorageSlot) Storage {
	m := make(map[string]*big.Int, len(pairs))
	for _, p := range pairs {
		m[p.Slot.Text(16)] = p.Value
	}
	return func(slot *big.Int) (*big.Int, bool) {
		v, ok := m[slot.Text(16)]
		return v, ok
	}
}

// StorageSlot is one constant storage assignment.
type StorageSlot struct {
	Slot, Value *big.Int
}

// maxBlockVisits bounds how many times one block is re-interpreted
// before the analysis gives up on further refinement; the join-based
// widening normally converges in two or three visits.
const maxBlockVisits = 64

// maxTotalVisits is the whole-CFG abstract-interpretation budget:
// adversarial jump-dense bytecode can force every block toward its
// per-block cap, so total work is additionally bounded to keep
// screening latency flat. Hitting it sets budgeted (surfaced as
// StaticAnalysis.Budgeted) and yields a partial result.
const maxTotalVisits = 20_000

// analysis runs the abstract interpretation over a CFG and accumulates
// extraction facts.
type analysis struct {
	g       *CFG
	storage Storage

	in          map[int]flowState
	visits      map[int]int
	totalVisits int

	calls      map[int]callSite // by PC, joined across visits
	stores     []storeSite
	copies     []copySite
	returns    []returnSite
	taintSinks []sinkSite
	selEdges   map[int]selEdge // by JUMPI PC
	edgeConds  map[[2]int]edgeCond
	fallbackPC int // StartPC of the fallback entry block, -1 if unseen

	incomplete bool
	budgeted   bool
}

func newAnalysis(g *CFG, storage Storage) *analysis {
	return &analysis{
		g:          g,
		storage:    storage,
		in:         make(map[int]flowState),
		visits:     make(map[int]int),
		calls:      make(map[int]callSite),
		selEdges:   make(map[int]selEdge),
		edgeConds:  make(map[[2]int]edgeCond),
		fallbackPC: -1,
	}
}

// run drives the worklist to a fixpoint from the entry block with an
// empty stack and empty memory.
func (a *analysis) run() {
	if len(a.g.Blocks) == 0 {
		return
	}
	a.in[0] = flowState{stack: []Value{}, mem: amem{}}
	work := []int{0}
	for len(work) > 0 {
		if a.totalVisits >= maxTotalVisits {
			a.budgeted = true
			a.incomplete = true
			break
		}
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if a.visits[b] >= maxBlockVisits {
			a.incomplete = true
			continue
		}
		a.visits[b]++
		a.totalVisits++
		for _, s := range a.transfer(b) {
			prev, seen := a.in[s.block]
			next := s.state
			if seen {
				next = flowState{
					stack: joinStack(prev.stack, s.state.stack),
					mem:   joinMem(prev.mem, s.state.mem),
				}
				if stackEq(prev.stack, next.stack) && memEq(prev.mem, next.mem) {
					continue
				}
			}
			a.in[s.block] = next
			work = append(work, s.block)
		}
	}
	a.g.MarkReachable()
}

// succState is a successor block plus the state flowing into it.
type succState struct {
	block int
	state flowState
}

// transfer interprets one block over its current entry state, records
// extraction facts, and returns the successor states.
func (a *analysis) transfer(bi int) []succState {
	g := a.g
	b := &g.Blocks[bi]
	entry := a.in[bi]
	stack := append([]Value(nil), entry.stack...)
	mem := cloneMem(entry.mem)

	pop := func() Value {
		if len(stack) == 0 {
			return unknown()
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	// The EVM faults any execution whose stack exceeds 1024 entries, so
	// an abstract state past that depth describes no reachable run:
	// the path is pruned rather than propagated. Without this cap a
	// stack-growing loop makes every visit's join cost unbounded, which
	// the visit budget alone cannot contain.
	overflow := false
	push := func(v Value) {
		if len(stack) >= 1024 {
			overflow = true
			return
		}
		stack = append(stack, v)
	}

	for i := b.Start; i < b.End; i++ {
		if overflow {
			a.incomplete = true
			return nil
		}
		in := g.Instrs[i]
		op := in.Op
		switch {
		case in.Truncated:
			// The code ends mid-PUSH: nothing executes past here.
			return nil

		case op >= evm.PUSH1 && op <= evm.PUSH1+31:
			push(konst(new(big.Int).SetBytes(in.Operand)))

		case op == evm.PUSH0:
			push(konstInt64(0))

		case op >= evm.DUP1 && op <= evm.DUP1+15:
			n := int(op-evm.DUP1) + 1
			if len(stack) >= n {
				push(stack[len(stack)-n])
			} else {
				push(unknown())
			}

		case op >= evm.SWAP1 && op <= evm.SWAP1+15:
			n := int(op-evm.SWAP1) + 1
			if len(stack) >= n+1 {
				top := len(stack) - 1
				stack[top], stack[top-n] = stack[top-n], stack[top]
			}

		case op == evm.POP:
			pop()

		case op == evm.CALLVALUE:
			push(Value{Kind: KCallValue})
		case op == evm.CALLER:
			push(Value{Kind: KCaller})
		case op == evm.CALLDATASIZE:
			push(Value{Kind: KCallDataSize})

		case op == evm.CALLDATALOAD:
			off := pop()
			if off.isConst() {
				push(Value{Kind: KCallData, Aux: off.Const, Tainted: true})
			} else {
				push(taintedUnknown())
			}

		case op == evm.SLOAD:
			slot := pop()
			push(a.load(slot))

		case op == evm.SSTORE:
			key, val := pop(), pop()
			if key.isConst() && val.isConst() {
				a.stores = append(a.stores, storeSite{slot: key.Const, val: val.Const})
			}
			if key.Tainted || val.Tainted {
				a.markSink(in.PC, op)
			}

		case op == evm.ISZERO:
			push(flip(pop()))

		case op == evm.ADD, op == evm.MUL, op == evm.SUB, op == evm.DIV,
			op == evm.MOD, op == evm.EXP, op == evm.AND, op == evm.OR,
			op == evm.XOR, op == evm.LT, op == evm.GT, op == evm.EQ,
			op == evm.SHL, op == evm.SHR:
			x, y := pop(), pop()
			push(binOp(op, x, y))

		case op == evm.NOT:
			v := pop()
			if v.isConst() {
				out := new(big.Int).Sub(two256, big.NewInt(1))
				nv := konst(out.Xor(out, v.Const))
				nv.Tainted = v.Tainted
				push(nv)
			} else {
				push(Value{Kind: KUnknown, Tainted: v.Tainted})
			}

		case op == evm.PC:
			push(konstInt64(int64(in.PC)))

		case op == evm.MLOAD:
			off := pop()
			if off.isConst() && off.Const.IsInt64() {
				push(loadWord(mem, off.Const.Int64()))
			} else {
				push(unknown())
			}

		case op == evm.MSTORE:
			off, val := pop(), pop()
			if off.isConst() && off.Const.IsInt64() {
				storeWord(mem, off.Const.Int64(), val)
			} else {
				// A store at an unknown offset may overwrite anything.
				mem = amem{}
			}

		case op == evm.CALLDATACOPY:
			memOff, dataOff, size := pop(), pop(), pop()
			_ = dataOff
			if memOff.isConst() && memOff.Const.IsInt64() &&
				size.isConst() && size.Const.IsInt64() &&
				size.Const.Int64() >= 0 && size.Const.Int64() <= maxModeledCopy {
				o, n := memOff.Const.Int64(), size.Const.Int64()
				clobberRange(mem, o, n)
				for w := o; w+32 <= o+n; w += 32 {
					mem[w] = memCell{val: taintedUnknown(), valid: 32}
				}
			} else {
				mem = amem{}
			}

		case op == evm.RETURNDATACOPY:
			memOff, _, size := pop(), pop(), pop()
			if memOff.isConst() && memOff.Const.IsInt64() &&
				size.isConst() && size.Const.IsInt64() && size.Const.Int64() >= 0 {
				clobberRange(mem, memOff.Const.Int64(), size.Const.Int64())
			} else {
				mem = amem{}
			}

		case op == evm.CODECOPY:
			memOff, codeOff, size := pop(), pop(), pop()
			if memOff.isConst() && codeOff.isConst() && size.isConst() &&
				memOff.Const.IsInt64() && codeOff.Const.IsInt64() && size.Const.IsInt64() {
				a.copies = append(a.copies, copySite{
					memOff:  memOff.Const.Int64(),
					codeOff: codeOff.Const.Int64(),
					size:    size.Const.Int64(),
				})
				clobberRange(mem, memOff.Const.Int64(), size.Const.Int64())
			} else {
				mem = amem{}
			}

		case op == evm.RETURN:
			off, size := pop(), pop()
			if off.isConst() && size.isConst() && off.Const.IsInt64() && size.Const.IsInt64() {
				a.returns = append(a.returns, returnSite{off: off.Const.Int64(), size: size.Const.Int64()})
			}
			return nil

		case op == evm.CALL:
			pop() // gas
			to := pop()
			value := pop()
			inOff := pop()
			inSize := pop()
			pop() // outOff
			pop() // outSize
			a.recordCall(callSite{pc: in.PC, block: bi, kind: callPlain, to: to, value: value}, mem, inOff, inSize)
			push(unknown()) // success flag

		case op == evm.DELEGATECALL:
			pop() // gas
			to := pop()
			inOff := pop()
			inSize := pop()
			pop() // outOff
			pop() // outSize
			// A delegatecall implicitly forwards the frame's value.
			a.recordCall(callSite{pc: in.PC, block: bi, kind: callDelegate, to: to, value: Value{Kind: KCallValue}}, mem, inOff, inSize)
			push(unknown())

		case op == evm.STATICCALL:
			pop() // gas
			to := pop()
			inOff := pop()
			inSize := pop()
			pop() // outOff
			pop() // outSize
			a.recordCall(callSite{pc: in.PC, block: bi, kind: callStatic, to: to, value: konstInt64(0)}, mem, inOff, inSize)
			push(unknown())

		case op == evm.CREATE:
			pop()
			pop()
			pop()
			push(unknown())

		case op == evm.JUMP:
			target := pop()
			return a.jumpSuccs(bi, target, flowState{stack: stack, mem: mem}, nil)

		case op == evm.JUMPI:
			target, cond := pop(), pop()
			return a.jumpSuccs(bi, target, flowState{stack: stack, mem: mem}, &jumpiState{cond: cond, pc: in.PC})

		case op == evm.STOP, op == evm.REVERT:
			return nil

		default:
			if op >= evm.LOG0 && op <= evm.LOG0+4 {
				args := make([]Value, 2+int(op-evm.LOG0))
				for j := range args {
					args[j] = pop()
				}
				for _, v := range args[2:] {
					if v.Tainted {
						a.markSink(in.PC, op)
					}
				}
				continue
			}
			// Remaining known ops have no extraction significance: apply
			// their stack arity with unknown results.
			pops, pushes, ok := opEffect(op)
			if !ok {
				return nil // unknown opcode halts like INVALID
			}
			for j := 0; j < pops; j++ {
				pop()
			}
			for j := 0; j < pushes; j++ {
				push(unknown())
			}
		}
	}

	if overflow {
		a.incomplete = true
		return nil
	}
	// Block ended without a terminator: fall through.
	if bi+1 < len(a.g.Blocks) {
		return []succState{{block: bi + 1, state: flowState{stack: stack, mem: mem}}}
	}
	return nil
}

// maxModeledCopy bounds the CALLDATACOPY span the memory model expands
// into per-word cells; larger copies clobber the whole image instead.
const maxModeledCopy = 4096

// markSink records a calldata-tainted non-call sink (SSTORE topic/value
// or LOG topic), deduplicated by PC.
func (a *analysis) markSink(pc int, op byte) {
	for _, s := range a.taintSinks {
		if s.pc == pc {
			return
		}
	}
	a.taintSinks = append(a.taintSinks, sinkSite{pc: pc, op: op})
}

// recordCall completes a call site with payload facts from abstract
// memory and joins it with earlier visits of the same PC.
func (a *analysis) recordCall(site callSite, mem amem, inOff, inSize Value) {
	if inOff.isConst() && inOff.Const.IsInt64() && inSize.isConst() && inSize.Const.IsInt64() {
		site.inKnown = true
		site.inOff = inOff.Const.Int64()
		site.inSize = inSize.Const.Int64()
		if site.inSize >= 4 {
			if c, ok := mem[site.inOff]; ok && c.val.isConst() && c.valid >= 4 {
				var word [32]byte
				c.val.Const.FillBytes(word[:])
				copy(site.paySel[:], word[:4])
				site.paySelKnown = true
			}
		}
		for i := 0; int64(4+32*i+32) <= site.inSize && i < maxPayloadArgs; i++ {
			site.args = append(site.args, loadWord(mem, site.inOff+4+int64(32*i)))
		}
		for k, c := range mem {
			if c.val.Tainted && k+int64(c.valid) > site.inOff && k < site.inOff+site.inSize {
				site.payloadTainted = true
				break
			}
		}
	}
	if site.to.Tainted || site.value.Tainted || site.payloadTainted {
		a.markSink(site.pc, evm.CALL)
	}
	if prev, ok := a.calls[site.pc]; ok {
		site = joinCallSite(prev, site)
	}
	a.calls[site.pc] = site
}

// joinCallSite merges the payload facts of repeated visits to one call
// site; anything that differs across visits degrades to unknown.
func joinCallSite(prev, cur callSite) callSite {
	out := cur
	out.to = joinValue(prev.to, cur.to)
	out.value = joinValue(prev.value, cur.value)
	out.payloadTainted = prev.payloadTainted || cur.payloadTainted
	if !prev.inKnown || !cur.inKnown || prev.inOff != cur.inOff || prev.inSize != cur.inSize {
		out.inKnown = false
		out.paySelKnown = false
		out.args = nil
		return out
	}
	if !prev.paySelKnown || prev.paySel != cur.paySel {
		out.paySelKnown = false
		out.paySel = [4]byte{}
	}
	n := len(prev.args)
	if len(cur.args) < n {
		n = len(cur.args)
	}
	args := make([]Value, n)
	for i := range args {
		args[i] = joinValue(prev.args[i], cur.args[i])
	}
	out.args = args
	return out
}

// jumpiState carries the parts of a JUMPI needed to label its edges.
type jumpiState struct {
	cond Value
	pc   int
}

// jumpSuccs resolves a JUMP/JUMPI target and labels the resulting
// edges with selector, callvalue, and caller conditions. For a plain
// JUMP, ji is nil and only the jump edge is produced.
func (a *analysis) jumpSuccs(bi int, target Value, st flowState, ji *jumpiState) []succState {
	var out []succState
	if target.isConst() {
		if tb, ok := a.g.JumpTargetBlock(target.Const); ok {
			a.g.AddEdge(bi, tb)
			out = append(out, succState{block: tb, state: flowState{
				stack: append([]Value(nil), st.stack...),
				mem:   st.mem,
			}})
			if ji != nil {
				a.labelEdge(bi, tb, ji, true)
			}
		}
		// A constant target without a JUMPDEST faults at runtime: the
		// edge simply does not exist.
	} else {
		// A non-constant target defeats resolution; the CFG under-
		// approximates from here on.
		a.incomplete = true
	}
	if ji != nil && bi+1 < len(a.g.Blocks) {
		a.g.AddEdge(bi, bi+1)
		out = append(out, succState{block: bi + 1, state: st})
		a.labelEdge(bi, bi+1, ji, false)
	}
	return out
}

// labelEdge records what taking (or not taking) a conditional branch
// implies about the call environment.
func (a *analysis) labelEdge(from, to int, ji *jumpiState, taken bool) {
	cond := ji.cond
	// The branch is taken when the condition is truthy. A negated
	// condition swaps which edge carries the positive fact.
	positive := taken != cond.Neg
	key := [2]int{from, to}
	switch cond.Kind {
	case KSelectorCmp:
		if positive {
			a.selEdges[ji.pc] = selEdge{sel: cond.Sel, target: to, pc: ji.pc}
		}
	case KValueZero:
		if positive {
			a.edgeConds[key] = condZeroValue
		}
	case KCallerCmp:
		if positive {
			a.edgeConds[key] = condCaller
		}
	case KShortCalldata:
		if positive && a.fallbackPC < 0 {
			a.fallbackPC = a.g.Blocks[to].StartPC
		}
	}
}

// load resolves an SLOAD through the storage environment. A load at a
// calldata-derived slot yields attacker-selected data: tainted.
func (a *analysis) load(slot Value) Value {
	if !slot.isConst() {
		return Value{Kind: KUnknown, Tainted: slot.Tainted}
	}
	if a.storage != nil {
		if v, ok := a.storage(slot.Const); ok {
			return konst(v)
		}
	}
	return Value{Kind: KSLoad, Aux: slot.Const}
}

// flip negates a condition value (ISZERO), preserving taint.
func flip(v Value) Value {
	switch v.Kind {
	case KSelectorCmp, KValueZero, KCallerCmp, KShortCalldata:
		v.Neg = !v.Neg
		return v
	case KCallValue:
		return Value{Kind: KValueZero}
	case KConst:
		out := konstInt64(0)
		if v.Const.Sign() == 0 {
			out = konstInt64(1)
		}
		out.Tainted = v.Tainted
		return out
	}
	return Value{Kind: KUnknown, Tainted: v.Tainted}
}

var (
	two256   = new(big.Int).Lsh(big.NewInt(1), 256)
	shift224 = new(big.Int).Lsh(big.NewInt(1), 224)
	selMask  = big.NewInt(0xffffffff)
	perMille = big.NewInt(1000)
)

// binOp applies a binary opcode to abstract values, propagating taint:
// a result computed from calldata-derived operands is itself
// calldata-derived.
func binOp(op byte, x, y Value) Value {
	out := binOpCore(op, x, y)
	if x.Tainted || y.Tainted {
		out.Tainted = true
	}
	return out
}

// binOpCore is binOp without the taint bookkeeping. x is the stack top
// (the first popped operand), matching the interpreter's convention.
func binOpCore(op byte, x, y Value) Value {
	if x.isConst() && y.isConst() {
		if v := foldConst(op, x.Const, y.Const); v != nil {
			return konst(v)
		}
		return unknown()
	}
	switch op {
	case evm.MUL:
		// callvalue * ratio, either operand order; the ratio is a push
		// constant or an (optionally resolved) storage word.
		if v, ok := shareNumerator(x, y); ok {
			return v
		}
		if v, ok := shareNumerator(y, x); ok {
			return v
		}
	case evm.DIV:
		if x.Kind == KShareNum && y.isConst() && y.Const.Sign() > 0 {
			return shareFrom(x.Aux, y.Const)
		}
		// Pre-SHR dispatchers: calldataload(0) / 2^224 isolates the
		// selector.
		if x.Kind == KCallData && x.Aux != nil && x.Aux.Sign() == 0 &&
			y.isConst() && y.Const.Cmp(shift224) == 0 {
			return Value{Kind: KSelector}
		}
	case evm.SUB:
		if x.Kind == KCallValue && y.Kind == KShare {
			rem := Value{Kind: KRemainder}
			if y.Aux != nil {
				rem.Aux = new(big.Int).Sub(perMille, y.Aux)
			}
			return rem
		}
	case evm.SHR:
		if x.constEq(224) && y.Kind == KCallData && y.Aux != nil && y.Aux.Sign() == 0 {
			return Value{Kind: KSelector}
		}
	case evm.AND:
		if x.Kind == KSelector && y.isConst() && y.Const.Cmp(selMask) == 0 {
			return x
		}
		if y.Kind == KSelector && x.isConst() && x.Const.Cmp(selMask) == 0 {
			return y
		}
	case evm.EQ:
		if v, ok := eqCond(x, y); ok {
			return v
		}
		if v, ok := eqCond(y, x); ok {
			return v
		}
	case evm.LT:
		if x.Kind == KCallDataSize && y.constEq(4) {
			return Value{Kind: KShortCalldata}
		}
	case evm.GT:
		if x.constEq(4) && y.Kind == KCallDataSize {
			return Value{Kind: KShortCalldata}
		}
	}
	return unknown()
}

// shareNumerator recognizes callvalue*ratio.
func shareNumerator(cv, ratio Value) (Value, bool) {
	if cv.Kind != KCallValue {
		return Value{}, false
	}
	switch ratio.Kind {
	case KConst:
		return Value{Kind: KShareNum, Aux: ratio.Const}, true
	case KSLoad:
		return Value{Kind: KShareNum}, true // ratio symbolic
	}
	return Value{}, false
}

// shareFrom normalizes callvalue*ratio/den to a per-mille share.
func shareFrom(ratio, den *big.Int) Value {
	if ratio == nil {
		return Value{Kind: KShare}
	}
	pm := new(big.Int).Mul(ratio, perMille)
	rem := new(big.Int)
	pm.QuoRem(pm, den, rem)
	if rem.Sign() != 0 || !pm.IsInt64() {
		return Value{Kind: KShare}
	}
	return Value{Kind: KShare, Aux: pm}
}

// eqCond recognizes the comparison conditions the extractor cares
// about, with a as the symbolic side.
func eqCond(a, b Value) (Value, bool) {
	switch a.Kind {
	case KSelector:
		if b.isConst() && b.Const.BitLen() <= 32 {
			var sel [4]byte
			b.Const.FillBytes(sel[:])
			return Value{Kind: KSelectorCmp, Sel: sel}, true
		}
	case KCallValue:
		if b.isConst() && b.Const.Sign() == 0 {
			return Value{Kind: KValueZero}, true
		}
	case KCaller:
		if b.isConst() {
			return Value{Kind: KCallerCmp, Aux: b.Const}, true
		}
	}
	return Value{}, false
}

// foldConst evaluates a binary opcode over two constants with 256-bit
// wrapping, mirroring the concrete interpreter. Returns nil when the
// opcode is not folded (EXP is skipped: exponentiation of attacker
// constants can be arbitrarily expensive).
func foldConst(op byte, a, b *big.Int) *big.Int {
	out := new(big.Int)
	switch op {
	case evm.ADD:
		return wrap256(out.Add(a, b))
	case evm.MUL:
		return wrap256(out.Mul(a, b))
	case evm.SUB:
		return wrap256(out.Sub(a, b))
	case evm.DIV:
		if b.Sign() == 0 {
			return out
		}
		return out.Div(a, b)
	case evm.MOD:
		if b.Sign() == 0 {
			return out
		}
		return out.Mod(a, b)
	case evm.AND:
		return out.And(a, b)
	case evm.OR:
		return out.Or(a, b)
	case evm.XOR:
		return out.Xor(a, b)
	case evm.LT:
		return boolBig(a.Cmp(b) < 0)
	case evm.GT:
		return boolBig(a.Cmp(b) > 0)
	case evm.EQ:
		return boolBig(a.Cmp(b) == 0)
	case evm.SHL:
		if !a.IsInt64() || a.Int64() > 255 {
			return out
		}
		return wrap256(out.Lsh(b, uint(a.Int64())))
	case evm.SHR:
		if !a.IsInt64() || a.Int64() > 255 {
			return out
		}
		return out.Rsh(b, uint(a.Int64()))
	}
	return nil
}

func wrap256(v *big.Int) *big.Int {
	if v.Sign() < 0 || v.BitLen() > 256 {
		v.Mod(v, two256)
	}
	return v
}

func boolBig(b bool) *big.Int {
	if b {
		return big.NewInt(1)
	}
	return new(big.Int)
}

// opEffect gives the stack arity of the known opcodes that carry no
// extraction meaning beyond consuming and producing unknowns.
func opEffect(op byte) (pops, pushes int, ok bool) {
	switch op {
	case evm.ADDRESS, evm.CODESIZE, evm.RETURNDATASIZE, evm.TIMESTAMP,
		evm.NUMBER, evm.SELFBALANCE, evm.GAS:
		return 0, 1, true
	case evm.BALANCE, evm.MLOAD:
		return 1, 1, true
	case evm.MSTORE:
		return 2, 0, true
	case evm.CALLDATACOPY, evm.RETURNDATACOPY:
		return 3, 0, true
	case evm.JUMPDEST:
		return 0, 0, true
	}
	if op >= evm.LOG0 && op <= evm.LOG0+4 {
		return 2 + int(op-evm.LOG0), 0, true
	}
	return 0, 0, false
}
