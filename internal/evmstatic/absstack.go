package evmstatic

import (
	"math/big"

	"repro/internal/evm"
)

// Kind classifies an abstract stack value. Beyond plain constants the
// lattice tracks the handful of symbolic shapes the drainer templates
// (and Solidity dispatchers generally) compute from the call
// environment, so the extractor can recognize selector dispatch,
// CALLVALUE guards, and the MUL/DIV profit-split idiom without
// executing anything.
type Kind uint8

// Abstract value kinds.
const (
	KUnknown Kind = iota
	// KConst is a fully known 256-bit constant (Const set).
	KConst
	// KCallValue is msg.value.
	KCallValue
	// KCaller is msg.sender.
	KCaller
	// KCallDataSize is calldatasize().
	KCallDataSize
	// KCallData is calldataload(Aux) for a constant offset.
	KCallData
	// KSelector is the dispatched selector: shr(224, calldataload(0))
	// or the DIV/AND equivalent of older compilers.
	KSelector
	// KSLoad is sload(Aux) left symbolic because no storage environment
	// covers the slot.
	KSLoad
	// KShareNum is callvalue*ratio; Aux is the ratio when constant, nil
	// when the ratio itself came from unresolved storage.
	KShareNum
	// KShare is callvalue*ratio/den normalized to per-mille: the
	// operator's cut. Aux is the per-mille ratio (nil when unresolved).
	KShare
	// KRemainder is callvalue-share: the affiliate's cut. Aux is the
	// complementary per-mille ratio (nil when unresolved).
	KRemainder
	// KSelectorCmp is the condition selector == Sel (Neg: !=).
	KSelectorCmp
	// KValueZero is the condition callvalue == 0 (Neg: != 0).
	KValueZero
	// KCallerCmp is the condition caller == Const (Neg: !=).
	KCallerCmp
	// KShortCalldata is the condition calldatasize < 4 (Neg: >= 4), the
	// dispatcher's fallback test.
	KShortCalldata
)

// Value is one abstract stack slot.
type Value struct {
	Kind  Kind
	Const *big.Int // concrete value, when known
	Aux   *big.Int // kind-specific: calldata offset, storage slot, or ratio
	Sel   [4]byte  // KSelectorCmp
	Neg   bool     // negated condition kinds
}

func unknown() Value           { return Value{Kind: KUnknown} }
func konst(v *big.Int) Value   { return Value{Kind: KConst, Const: v} }
func konstInt64(v int64) Value { return konst(big.NewInt(v)) }
func (v Value) isConst() bool  { return v.Kind == KConst && v.Const != nil }
func (v Value) constEq(x int64) bool {
	return v.isConst() && v.Const.IsInt64() && v.Const.Int64() == x
}

func bigEq(a, b *big.Int) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.Cmp(b) == 0
}

func valueEq(a, b Value) bool {
	return a.Kind == b.Kind && a.Neg == b.Neg && a.Sel == b.Sel &&
		bigEq(a.Const, b.Const) && bigEq(a.Aux, b.Aux)
}

// joinValue is the lattice join: equal values stay, anything else
// degrades to unknown.
func joinValue(a, b Value) Value {
	if valueEq(a, b) {
		return a
	}
	return unknown()
}

// joinStack joins two abstract stacks aligned at the top; depth
// mismatches (merging paths that carry different residue below the
// live region) pad with unknowns.
func joinStack(a, b []Value) []Value {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]Value, n)
	for i := 0; i < n; i++ {
		av, bv := unknown(), unknown()
		if i < len(a) {
			av = a[len(a)-1-i]
		}
		if i < len(b) {
			bv = b[len(b)-1-i]
		}
		out[n-1-i] = joinValue(av, bv)
	}
	return out
}

func stackEq(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !valueEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// edgeCond labels what a CFG edge requires of the call environment.
type edgeCond uint8

// Edge conditions relevant to extraction.
const (
	condNone edgeCond = iota
	// condZeroValue: the edge is taken only when callvalue == 0.
	condZeroValue
	// condCaller: the edge is taken only by one specific caller.
	condCaller
)

// callSite is a recorded CALL with its abstract target and value.
type callSite struct {
	pc    int
	block int
	to    Value
	value Value
}

// storeSite is a recorded SSTORE with constant slot and value.
type storeSite struct {
	slot, val *big.Int
}

// copySite is a recorded CODECOPY with constant operands.
type copySite struct {
	memOff, codeOff, size int64
}

// returnSite is a recorded RETURN with constant operands.
type returnSite struct {
	off, size int64
}

// selEdge records "jumping to block Target means the dispatched
// selector equals Sel".
type selEdge struct {
	sel    [4]byte
	target int
	pc     int // PC of the deciding JUMPI, for code-order selector listing
}

// Storage supplies constant storage words to the abstract interpreter.
// Implementations come from constructor-recovered stores
// (AnalyzeDeploy) or from deployed chain state.
type Storage func(slot *big.Int) (*big.Int, bool)

// NewStorage builds a Storage from explicit slot/value pairs.
func NewStorage(pairs []StorageSlot) Storage {
	m := make(map[string]*big.Int, len(pairs))
	for _, p := range pairs {
		m[p.Slot.Text(16)] = p.Value
	}
	return func(slot *big.Int) (*big.Int, bool) {
		v, ok := m[slot.Text(16)]
		return v, ok
	}
}

// StorageSlot is one constant storage assignment.
type StorageSlot struct {
	Slot, Value *big.Int
}

// maxBlockVisits bounds how many times one block is re-interpreted
// before the analysis gives up on further refinement; the join-based
// widening normally converges in two or three visits.
const maxBlockVisits = 64

// analysis runs the abstract interpretation over a CFG and accumulates
// extraction facts.
type analysis struct {
	g       *CFG
	storage Storage

	in     map[int][]Value
	visits map[int]int

	calls      map[int]callSite // by PC, joined across visits
	stores     []storeSite
	copies     []copySite
	returns    []returnSite
	selEdges   map[int]selEdge // by JUMPI PC
	edgeConds  map[[2]int]edgeCond
	fallbackPC int // StartPC of the fallback entry block, -1 if unseen

	incomplete bool
}

func newAnalysis(g *CFG, storage Storage) *analysis {
	return &analysis{
		g:          g,
		storage:    storage,
		in:         make(map[int][]Value),
		visits:     make(map[int]int),
		calls:      make(map[int]callSite),
		selEdges:   make(map[int]selEdge),
		edgeConds:  make(map[[2]int]edgeCond),
		fallbackPC: -1,
	}
}

// run drives the worklist to a fixpoint from the entry block with an
// empty stack.
func (a *analysis) run() {
	if len(a.g.Blocks) == 0 {
		return
	}
	a.in[0] = []Value{}
	work := []int{0}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if a.visits[b] >= maxBlockVisits {
			a.incomplete = true
			continue
		}
		a.visits[b]++
		for _, s := range a.transfer(b) {
			prev, seen := a.in[s.block]
			next := s.stack
			if seen {
				next = joinStack(prev, s.stack)
				if stackEq(prev, next) {
					continue
				}
			}
			a.in[s.block] = next
			work = append(work, s.block)
		}
	}
	a.g.MarkReachable()
}

// succState is a successor block plus the stack flowing into it.
type succState struct {
	block int
	stack []Value
}

// transfer interprets one block over its current entry stack, records
// extraction facts, and returns the successor states.
func (a *analysis) transfer(bi int) []succState {
	g := a.g
	b := &g.Blocks[bi]
	stack := append([]Value(nil), a.in[bi]...)

	pop := func() Value {
		if len(stack) == 0 {
			return unknown()
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}
	push := func(v Value) { stack = append(stack, v) }

	for i := b.Start; i < b.End; i++ {
		in := g.Instrs[i]
		op := in.Op
		switch {
		case in.Truncated:
			// The code ends mid-PUSH: nothing executes past here.
			return nil

		case op >= evm.PUSH1 && op <= evm.PUSH1+31:
			push(konst(new(big.Int).SetBytes(in.Operand)))

		case op == evm.PUSH0:
			push(konstInt64(0))

		case op >= evm.DUP1 && op <= evm.DUP1+15:
			n := int(op-evm.DUP1) + 1
			if len(stack) >= n {
				push(stack[len(stack)-n])
			} else {
				push(unknown())
			}

		case op >= evm.SWAP1 && op <= evm.SWAP1+15:
			n := int(op-evm.SWAP1) + 1
			if len(stack) >= n+1 {
				top := len(stack) - 1
				stack[top], stack[top-n] = stack[top-n], stack[top]
			}

		case op == evm.POP:
			pop()

		case op == evm.CALLVALUE:
			push(Value{Kind: KCallValue})
		case op == evm.CALLER:
			push(Value{Kind: KCaller})
		case op == evm.CALLDATASIZE:
			push(Value{Kind: KCallDataSize})

		case op == evm.CALLDATALOAD:
			off := pop()
			if off.isConst() {
				push(Value{Kind: KCallData, Aux: off.Const})
			} else {
				push(unknown())
			}

		case op == evm.SLOAD:
			slot := pop()
			push(a.load(slot))

		case op == evm.SSTORE:
			key, val := pop(), pop()
			if key.isConst() && val.isConst() {
				a.stores = append(a.stores, storeSite{slot: key.Const, val: val.Const})
			}

		case op == evm.ISZERO:
			push(flip(pop()))

		case op == evm.ADD, op == evm.MUL, op == evm.SUB, op == evm.DIV,
			op == evm.MOD, op == evm.EXP, op == evm.AND, op == evm.OR,
			op == evm.XOR, op == evm.LT, op == evm.GT, op == evm.EQ,
			op == evm.SHL, op == evm.SHR:
			x, y := pop(), pop()
			push(binOp(op, x, y))

		case op == evm.NOT:
			v := pop()
			if v.isConst() {
				out := new(big.Int).Sub(two256, big.NewInt(1))
				push(konst(out.Xor(out, v.Const)))
			} else {
				push(unknown())
			}

		case op == evm.PC:
			push(konstInt64(int64(in.PC)))

		case op == evm.CODECOPY:
			memOff, codeOff, size := pop(), pop(), pop()
			if memOff.isConst() && codeOff.isConst() && size.isConst() &&
				memOff.Const.IsInt64() && codeOff.Const.IsInt64() && size.Const.IsInt64() {
				a.copies = append(a.copies, copySite{
					memOff:  memOff.Const.Int64(),
					codeOff: codeOff.Const.Int64(),
					size:    size.Const.Int64(),
				})
			}

		case op == evm.RETURN:
			off, size := pop(), pop()
			if off.isConst() && size.isConst() && off.Const.IsInt64() && size.Const.IsInt64() {
				a.returns = append(a.returns, returnSite{off: off.Const.Int64(), size: size.Const.Int64()})
			}
			return nil

		case op == evm.CALL:
			pop() // gas
			to := pop()
			value := pop()
			pop() // inOff
			pop() // inSize
			pop() // outOff
			pop() // outSize
			site := callSite{pc: in.PC, block: bi, to: to, value: value}
			if prev, ok := a.calls[in.PC]; ok {
				site.to = joinValue(prev.to, to)
				site.value = joinValue(prev.value, value)
			}
			a.calls[in.PC] = site
			push(unknown()) // success flag

		case op == evm.CREATE:
			pop()
			pop()
			pop()
			push(unknown())

		case op == evm.JUMP:
			target := pop()
			return a.jumpSuccs(bi, target, stack, nil)

		case op == evm.JUMPI:
			target, cond := pop(), pop()
			return a.jumpSuccs(bi, target, stack, &jumpiState{cond: cond, pc: in.PC})

		case op == evm.STOP, op == evm.REVERT:
			return nil

		default:
			// Remaining known ops have no extraction significance: apply
			// their stack arity with unknown results.
			pops, pushes, ok := opEffect(op)
			if !ok {
				return nil // unknown opcode halts like INVALID
			}
			for j := 0; j < pops; j++ {
				pop()
			}
			for j := 0; j < pushes; j++ {
				push(unknown())
			}
		}
	}

	// Block ended without a terminator: fall through.
	if bi+1 < len(a.g.Blocks) {
		return []succState{{block: bi + 1, stack: stack}}
	}
	return nil
}

// jumpiState carries the parts of a JUMPI needed to label its edges.
type jumpiState struct {
	cond Value
	pc   int
}

// jumpSuccs resolves a JUMP/JUMPI target and labels the resulting
// edges with selector, callvalue, and caller conditions. For a plain
// JUMP, ji is nil and only the jump edge is produced.
func (a *analysis) jumpSuccs(bi int, target Value, stack []Value, ji *jumpiState) []succState {
	var out []succState
	if target.isConst() {
		if tb, ok := a.g.JumpTargetBlock(target.Const); ok {
			a.g.AddEdge(bi, tb)
			out = append(out, succState{block: tb, stack: append([]Value(nil), stack...)})
			if ji != nil {
				a.labelEdge(bi, tb, ji, true)
			}
		}
		// A constant target without a JUMPDEST faults at runtime: the
		// edge simply does not exist.
	} else {
		// A non-constant target defeats resolution; the CFG under-
		// approximates from here on.
		a.incomplete = true
	}
	if ji != nil && bi+1 < len(a.g.Blocks) {
		a.g.AddEdge(bi, bi+1)
		out = append(out, succState{block: bi + 1, stack: stack})
		a.labelEdge(bi, bi+1, ji, false)
	}
	return out
}

// labelEdge records what taking (or not taking) a conditional branch
// implies about the call environment.
func (a *analysis) labelEdge(from, to int, ji *jumpiState, taken bool) {
	cond := ji.cond
	// The branch is taken when the condition is truthy. A negated
	// condition swaps which edge carries the positive fact.
	positive := taken != cond.Neg
	key := [2]int{from, to}
	switch cond.Kind {
	case KSelectorCmp:
		if positive {
			a.selEdges[ji.pc] = selEdge{sel: cond.Sel, target: to, pc: ji.pc}
		}
	case KValueZero:
		if positive {
			a.edgeConds[key] = condZeroValue
		}
	case KCallerCmp:
		if positive {
			a.edgeConds[key] = condCaller
		}
	case KShortCalldata:
		if positive && a.fallbackPC < 0 {
			a.fallbackPC = a.g.Blocks[to].StartPC
		}
	}
}

// load resolves an SLOAD through the storage environment.
func (a *analysis) load(slot Value) Value {
	if !slot.isConst() {
		return unknown()
	}
	if a.storage != nil {
		if v, ok := a.storage(slot.Const); ok {
			return konst(v)
		}
	}
	return Value{Kind: KSLoad, Aux: slot.Const}
}

// flip negates a condition value (ISZERO).
func flip(v Value) Value {
	switch v.Kind {
	case KSelectorCmp, KValueZero, KCallerCmp, KShortCalldata:
		v.Neg = !v.Neg
		return v
	case KCallValue:
		return Value{Kind: KValueZero}
	case KConst:
		if v.Const.Sign() == 0 {
			return konstInt64(1)
		}
		return konstInt64(0)
	}
	return unknown()
}

var (
	two256   = new(big.Int).Lsh(big.NewInt(1), 256)
	shift224 = new(big.Int).Lsh(big.NewInt(1), 224)
	selMask  = big.NewInt(0xffffffff)
	perMille = big.NewInt(1000)
)

// binOp applies a binary opcode to abstract values. x is the stack top
// (the first popped operand), matching the interpreter's convention.
func binOp(op byte, x, y Value) Value {
	if x.isConst() && y.isConst() {
		if v := foldConst(op, x.Const, y.Const); v != nil {
			return konst(v)
		}
		return unknown()
	}
	switch op {
	case evm.MUL:
		// callvalue * ratio, either operand order; the ratio is a push
		// constant or an (optionally resolved) storage word.
		if v, ok := shareNumerator(x, y); ok {
			return v
		}
		if v, ok := shareNumerator(y, x); ok {
			return v
		}
	case evm.DIV:
		if x.Kind == KShareNum && y.isConst() && y.Const.Sign() > 0 {
			return shareFrom(x.Aux, y.Const)
		}
		// Pre-SHR dispatchers: calldataload(0) / 2^224 isolates the
		// selector.
		if x.Kind == KCallData && x.Aux != nil && x.Aux.Sign() == 0 &&
			y.isConst() && y.Const.Cmp(shift224) == 0 {
			return Value{Kind: KSelector}
		}
	case evm.SUB:
		if x.Kind == KCallValue && y.Kind == KShare {
			rem := Value{Kind: KRemainder}
			if y.Aux != nil {
				rem.Aux = new(big.Int).Sub(perMille, y.Aux)
			}
			return rem
		}
	case evm.SHR:
		if x.constEq(224) && y.Kind == KCallData && y.Aux != nil && y.Aux.Sign() == 0 {
			return Value{Kind: KSelector}
		}
	case evm.AND:
		if x.Kind == KSelector && y.isConst() && y.Const.Cmp(selMask) == 0 {
			return x
		}
		if y.Kind == KSelector && x.isConst() && x.Const.Cmp(selMask) == 0 {
			return y
		}
	case evm.EQ:
		if v, ok := eqCond(x, y); ok {
			return v
		}
		if v, ok := eqCond(y, x); ok {
			return v
		}
	case evm.LT:
		if x.Kind == KCallDataSize && y.constEq(4) {
			return Value{Kind: KShortCalldata}
		}
	case evm.GT:
		if x.constEq(4) && y.Kind == KCallDataSize {
			return Value{Kind: KShortCalldata}
		}
	}
	return unknown()
}

// shareNumerator recognizes callvalue*ratio.
func shareNumerator(cv, ratio Value) (Value, bool) {
	if cv.Kind != KCallValue {
		return Value{}, false
	}
	switch ratio.Kind {
	case KConst:
		return Value{Kind: KShareNum, Aux: ratio.Const}, true
	case KSLoad:
		return Value{Kind: KShareNum}, true // ratio symbolic
	}
	return Value{}, false
}

// shareFrom normalizes callvalue*ratio/den to a per-mille share.
func shareFrom(ratio, den *big.Int) Value {
	if ratio == nil {
		return Value{Kind: KShare}
	}
	pm := new(big.Int).Mul(ratio, perMille)
	rem := new(big.Int)
	pm.QuoRem(pm, den, rem)
	if rem.Sign() != 0 || !pm.IsInt64() {
		return Value{Kind: KShare}
	}
	return Value{Kind: KShare, Aux: pm}
}

// eqCond recognizes the comparison conditions the extractor cares
// about, with a as the symbolic side.
func eqCond(a, b Value) (Value, bool) {
	switch a.Kind {
	case KSelector:
		if b.isConst() && b.Const.BitLen() <= 32 {
			var sel [4]byte
			b.Const.FillBytes(sel[:])
			return Value{Kind: KSelectorCmp, Sel: sel}, true
		}
	case KCallValue:
		if b.isConst() && b.Const.Sign() == 0 {
			return Value{Kind: KValueZero}, true
		}
	case KCaller:
		if b.isConst() {
			return Value{Kind: KCallerCmp, Aux: b.Const}, true
		}
	}
	return Value{}, false
}

// foldConst evaluates a binary opcode over two constants with 256-bit
// wrapping, mirroring the concrete interpreter. Returns nil when the
// opcode is not folded (EXP is skipped: exponentiation of attacker
// constants can be arbitrarily expensive).
func foldConst(op byte, a, b *big.Int) *big.Int {
	out := new(big.Int)
	switch op {
	case evm.ADD:
		return wrap256(out.Add(a, b))
	case evm.MUL:
		return wrap256(out.Mul(a, b))
	case evm.SUB:
		return wrap256(out.Sub(a, b))
	case evm.DIV:
		if b.Sign() == 0 {
			return out
		}
		return out.Div(a, b)
	case evm.MOD:
		if b.Sign() == 0 {
			return out
		}
		return out.Mod(a, b)
	case evm.AND:
		return out.And(a, b)
	case evm.OR:
		return out.Or(a, b)
	case evm.XOR:
		return out.Xor(a, b)
	case evm.LT:
		return boolBig(a.Cmp(b) < 0)
	case evm.GT:
		return boolBig(a.Cmp(b) > 0)
	case evm.EQ:
		return boolBig(a.Cmp(b) == 0)
	case evm.SHL:
		if !a.IsInt64() || a.Int64() > 255 {
			return out
		}
		return wrap256(out.Lsh(b, uint(a.Int64())))
	case evm.SHR:
		if !a.IsInt64() || a.Int64() > 255 {
			return out
		}
		return out.Rsh(b, uint(a.Int64()))
	}
	return nil
}

func wrap256(v *big.Int) *big.Int {
	if v.Sign() < 0 || v.BitLen() > 256 {
		v.Mod(v, two256)
	}
	return v
}

func boolBig(b bool) *big.Int {
	if b {
		return big.NewInt(1)
	}
	return new(big.Int)
}

// opEffect gives the stack arity of the known opcodes that carry no
// extraction meaning beyond consuming and producing unknowns.
func opEffect(op byte) (pops, pushes int, ok bool) {
	switch op {
	case evm.ADDRESS, evm.CODESIZE, evm.RETURNDATASIZE, evm.TIMESTAMP,
		evm.NUMBER, evm.SELFBALANCE, evm.GAS:
		return 0, 1, true
	case evm.BALANCE, evm.MLOAD:
		return 1, 1, true
	case evm.MSTORE:
		return 2, 0, true
	case evm.CALLDATACOPY, evm.RETURNDATACOPY:
		return 3, 0, true
	case evm.JUMPDEST:
		return 0, 0, true
	}
	if op >= evm.LOG0 && op <= evm.LOG0+4 {
		return 2 + int(op-evm.LOG0), 0, true
	}
	return 0, 0, false
}
