package evmstatic_test

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
	"time"

	"repro/internal/contracts"
	"repro/internal/ethabi"
	"repro/internal/ethtypes"
	"repro/internal/evm"
	"repro/internal/evmstatic"
)

func addr(b byte) ethtypes.Address {
	var a ethtypes.Address
	a[19] = b
	return a
}

func testSpec(style contracts.Style) contracts.Spec {
	return contracts.Spec{
		Style:            style,
		Operator:         addr(0x0b),
		Affiliate:        addr(0xaf),
		OperatorPerMille: 200,
		Authorized:       addr(0xa1),
	}
}

func TestDisassembleTruncatedPush(t *testing.T) {
	code := []byte{byte(evm.PUSH1) + 3, 0xaa, 0xbb} // PUSH4 with 2 bytes
	ins := evmstatic.Disassemble(code)
	if len(ins) != 1 {
		t.Fatalf("got %d instructions, want 1", len(ins))
	}
	in := ins[0]
	if !in.Truncated {
		t.Fatalf("truncated PUSH not flagged: %+v", in)
	}
	if !bytes.Equal(in.Operand, []byte{0xaa, 0xbb}) {
		t.Errorf("operand = %x, want existing bytes aabb", in.Operand)
	}
	if s := in.String(); !strings.Contains(s, "!truncated") {
		t.Errorf("String() = %q, want truncation marker", s)
	}
	if s := evmstatic.FormatDisassembly(ins); !strings.Contains(s, "!truncated") {
		t.Errorf("FormatDisassembly misses truncation marker: %q", s)
	}
}

func TestDisassemblePCMonotonic(t *testing.T) {
	spec := testSpec(contracts.StyleClaim)
	code, err := contracts.Runtime(spec)
	if err != nil {
		t.Fatal(err)
	}
	checkMonotonic(t, code)
}

func checkMonotonic(t *testing.T, code []byte) {
	t.Helper()
	ins := evmstatic.Disassemble(code)
	prev := -1
	for _, in := range ins {
		if in.PC <= prev {
			t.Fatalf("PC %d after %d: not monotonic", in.PC, prev)
		}
		prev = in.PC
	}
	if len(ins) > 0 && ins[0].PC != 0 {
		t.Fatalf("first PC = %d, want 0", ins[0].PC)
	}
}

func TestBuildCFGTruncatedPushTerminates(t *testing.T) {
	// JUMPDEST, PUSH1 0x00, then PUSH4 with only one operand byte.
	code := []byte{evm.JUMPDEST, evm.PUSH1, 0x00, byte(evm.PUSH1) + 3, 0x01}
	g := evmstatic.BuildCFG(code)
	if len(g.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(g.Blocks))
	}
	if n := len(g.Blocks[0].Succs); n != 0 {
		t.Fatalf("truncated-push block has %d successors, want 0", n)
	}
}

func TestBuildCFGUnreachable(t *testing.T) {
	// Block 0 stops; trailing JUMPDEST block is unreachable.
	code := []byte{evm.PUSH1, 0x01, evm.STOP, evm.JUMPDEST, evm.STOP}
	g := evmstatic.BuildCFG(code)
	if len(g.Blocks) != 2 {
		t.Fatalf("got %d blocks, want 2", len(g.Blocks))
	}
	if !g.Blocks[0].Reachable || g.Blocks[1].Reachable {
		t.Fatalf("reachability = %v/%v, want true/false",
			g.Blocks[0].Reachable, g.Blocks[1].Reachable)
	}
}

func TestAnalyzeDeployClaimStyle(t *testing.T) {
	spec := testSpec(contracts.StyleClaim)
	initcode, err := contracts.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := evmstatic.AnalyzeDeploy(initcode)
	if err != nil {
		t.Fatal(err)
	}

	runtime, err := contracts.Runtime(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep.Runtime, runtime) {
		t.Fatalf("carved runtime does not match assembled runtime")
	}

	wantMain := ethabi.Selector(contracts.ClaimSignatures[0])
	var gotSels []string
	for _, fn := range rep.Functions {
		gotSels = append(gotSels, hex.EncodeToString(fn.Selector[:]))
	}
	if len(rep.Functions) != 2 {
		t.Fatalf("functions = %v, want main + multicall", gotSels)
	}
	main, mc := rep.Functions[0], rep.Functions[1]
	if main.Selector != wantMain {
		t.Errorf("first selector = %x, want claim %x", main.Selector, wantMain)
	}
	if mc.Selector != contracts.SelMulticall {
		t.Errorf("second selector = %x, want multicall %x", mc.Selector, contracts.SelMulticall)
	}
	if !main.Payable || !main.HasSplit || main.SplitPerMille != 200 {
		t.Errorf("main = %+v, want payable with 200‰ split", main)
	}
	if mc.Payable {
		t.Errorf("multicall reported payable; it is gated on the authorized caller")
	}
	if rep.PayableFallback {
		t.Errorf("claim-style fallback reported payable; it only swallows ETH")
	}

	if !rep.HasSplit || rep.SplitInFallback || rep.SplitSelector != wantMain {
		t.Fatalf("split attribution = has=%v fallback=%v sel=%x", rep.HasSplit, rep.SplitInFallback, rep.SplitSelector)
	}
	if !rep.RatioKnown || rep.OperatorPerMille != 200 || !rep.RatioInPaperSet {
		t.Errorf("ratio = %d (known=%v inSet=%v), want 200", rep.OperatorPerMille, rep.RatioKnown, rep.RatioInPaperSet)
	}
	if !rep.OperatorKnown || rep.Operator != spec.Operator {
		t.Errorf("operator = %s (known=%v), want %s", rep.Operator, rep.OperatorKnown, spec.Operator)
	}
	if rep.AffiliateKnown || !rep.AffiliateFromCalldata {
		t.Errorf("affiliate: known=%v fromCalldata=%v, want calldata-sourced", rep.AffiliateKnown, rep.AffiliateFromCalldata)
	}
	if rep.Incomplete {
		t.Errorf("analysis flagged incomplete on the claim template")
	}
}

func TestAnalyzeDeployFallbackStyle(t *testing.T) {
	spec := testSpec(contracts.StyleFallback)
	spec.OperatorPerMille = 330
	initcode, err := contracts.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := evmstatic.AnalyzeDeploy(initcode)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Functions) != 1 || rep.Functions[0].Selector != contracts.SelMulticall {
		t.Fatalf("functions = %+v, want multicall only", rep.Functions)
	}
	if !rep.PayableFallback {
		t.Fatalf("fallback-style contract not reported payable-fallback")
	}
	if !rep.HasSplit || !rep.SplitInFallback {
		t.Fatalf("split not attributed to fallback: %+v", rep)
	}
	if rep.OperatorPerMille != 330 || !rep.RatioKnown {
		t.Errorf("ratio = %d known=%v, want 330", rep.OperatorPerMille, rep.RatioKnown)
	}
	if !rep.OperatorKnown || rep.Operator != spec.Operator {
		t.Errorf("operator = %s, want %s", rep.Operator, spec.Operator)
	}
	if !rep.AffiliateKnown || rep.Affiliate != spec.Affiliate {
		t.Errorf("affiliate = %s (known=%v), want stored %s", rep.Affiliate, rep.AffiliateKnown, spec.Affiliate)
	}
}

func TestAnalyzeRuntimeWithoutStorage(t *testing.T) {
	// Without a storage environment the split shape is still found but
	// the ratio and operator stay symbolic.
	spec := testSpec(contracts.StyleClaim)
	code, err := contracts.Runtime(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := evmstatic.AnalyzeRuntime(code, nil)
	if !rep.HasSplit {
		t.Fatalf("split shape not found without storage")
	}
	if rep.RatioKnown || rep.OperatorKnown {
		t.Errorf("ratio/operator resolved without storage: known=%v/%v", rep.RatioKnown, rep.OperatorKnown)
	}
	if !rep.AffiliateFromCalldata {
		t.Errorf("calldata affiliate not recognized without storage")
	}
}

func TestSummaryRenders(t *testing.T) {
	spec := testSpec(contracts.StyleClaim)
	initcode, err := contracts.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := evmstatic.AnalyzeDeploy(initcode)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	if !strings.Contains(s, "200‰") || !strings.Contains(s, "constructor stores") {
		t.Errorf("Summary() missing expected content:\n%s", s)
	}
}

func TestRatioInPaperSet(t *testing.T) {
	for _, pm := range evmstatic.PaperRatiosPM {
		if !evmstatic.RatioInPaperSet(pm) {
			t.Errorf("paper ratio %d not in set", pm)
		}
	}
	for _, pm := range []int64{0, 99, 500, 1000} {
		if evmstatic.RatioInPaperSet(pm) {
			t.Errorf("%d wrongly in paper set", pm)
		}
	}
}

// TestAnalyzeBudgetedPathological feeds the analyzer adversarial
// jump-dense bytecode and checks the whole-CFG visit budget trips:
// the analysis returns promptly with Budgeted (and thus Incomplete)
// set instead of grinding through an unbounded fixpoint. A normal
// template must stay comfortably inside the budget.
func TestAnalyzeBudgetedPathological(t *testing.T) {
	// Shape 1: a flat chain of one-instruction blocks. Every JUMPDEST
	// opens a block, so 21k of them exceed the 20k total-visit budget
	// on the first pass.
	flat := bytes.Repeat([]byte{evm.JUMPDEST}, 21_000)
	st := evmstatic.AnalyzeRuntime(flat, nil)
	if !st.Budgeted {
		t.Errorf("flat chain of %d blocks not budgeted (%d blocks)", 21_000, st.Blocks)
	}
	if !st.Incomplete {
		t.Error("budgeted analysis not marked incomplete")
	}

	// Shape 2: a cyclic chain whose every block grows the abstract
	// stack (CALLVALUE) before jumping on. Without the 1024-entry
	// stack cap every re-visit's join cost would grow without bound;
	// with it the path is pruned as unreachable (the EVM faults past
	// 1024) and the analysis ends promptly, marked incomplete.
	const units = 400
	loop := make([]byte, 0, units*6)
	for i := 0; i < units; i++ {
		next := ((i + 1) % units) * 6
		loop = append(loop, evm.JUMPDEST, evm.CALLVALUE,
			evm.PUSH1+1, byte(next>>8), byte(next), evm.JUMP)
	}
	start := time.Now()
	st = evmstatic.AnalyzeRuntime(loop, nil)
	if !st.Incomplete {
		t.Errorf("stack-growing loop of %d blocks not marked incomplete", units)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("stack-growing loop took %v; adversarial latency not contained", elapsed)
	}

	// Control: a real template resolves without touching the budget.
	runtime, err := contracts.Runtime(testSpec(contracts.StyleClaim))
	if err != nil {
		t.Fatal(err)
	}
	if st := evmstatic.AnalyzeRuntime(runtime, nil); st.Budgeted {
		t.Error("claim-style template exhausted the visit budget")
	}
}
