package contracts

import (
	"math/big"
	"strings"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/ethabi"
	"repro/internal/ethtypes"
	"repro/internal/tokens"
)

var (
	operator   = ethtypes.Addr("0x0e00000000000000000000000000000000000001")
	affiliate  = ethtypes.Addr("0xaf00000000000000000000000000000000000002")
	authorized = ethtypes.Addr("0xa000000000000000000000000000000000000003")
	victim     = ethtypes.Addr("0x1c00000000000000000000000000000000000004")
	deployer   = ethtypes.Addr("0xde00000000000000000000000000000000000005")
	usdcAddr   = ethtypes.Addr("0xa0b86991c6218b36c1d19d4a2e9eb0ce3606eb48")
)

func ts() time.Time { return time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC) }

func to(a ethtypes.Address) *ethtypes.Address { return &a }

// deploySpec deploys a profit-sharing contract and returns its address.
func deploySpec(t *testing.T, c *chain.Chain, spec Spec) ethtypes.Address {
	t.Helper()
	initcode, err := Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, rs := c.Mine(ts(), &chain.Transaction{From: deployer, Data: initcode})
	if !rs[0].Status {
		t.Fatalf("deploy failed: %s", rs[0].Err)
	}
	return rs[0].ContractAddress
}

func newChain(t *testing.T) *chain.Chain {
	t.Helper()
	c := chain.New(ts())
	c.Fund(victim, ethtypes.Ether(100))
	c.Fund(deployer, ethtypes.Ether(1))
	c.Fund(authorized, ethtypes.Ether(1))
	return c
}

func chainReader(c *chain.Chain) StorageReader {
	return func(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash { return c.StorageAt(a, k) }
}

func TestClaimStyleSplitsETH(t *testing.T) {
	c := newChain(t)
	addr := deploySpec(t, c, Spec{
		Style: StyleClaim, Operator: operator,
		OperatorPerMille: 175, Authorized: authorized,
	})

	data, err := ClaimData("Claim(address)", affiliate)
	if err != nil {
		t.Fatal(err)
	}
	_, rs := c.Mine(ts(), &chain.Transaction{
		From: victim, To: to(addr), Value: ethtypes.Ether(40), Data: data,
	})
	if !rs[0].Status {
		t.Fatalf("claim tx failed: %s", rs[0].Err)
	}
	// 17.5% of 40 ETH = 7 ETH to the operator, 33 to the affiliate.
	if got := c.BalanceOf(operator); got.Cmp(ethtypes.Ether(7)) != 0 {
		t.Errorf("operator got %s, want 7 ETH", got)
	}
	if got := c.BalanceOf(affiliate); got.Cmp(ethtypes.Ether(33)) != 0 {
		t.Errorf("affiliate got %s, want 33 ETH", got)
	}
	// Fund flow: deposit + two shares.
	if n := len(rs[0].Transfers); n != 3 {
		t.Errorf("fund flow edges = %d, want 3", n)
	}
}

func TestFallbackStyleSplitsOnPlainSend(t *testing.T) {
	c := newChain(t)
	addr := deploySpec(t, c, Spec{
		Style: StyleFallback, Operator: operator, Affiliate: affiliate,
		OperatorPerMille: 200, Authorized: authorized,
	})
	// Victim sends plain ETH with no calldata (the Inferno pattern).
	_, rs := c.Mine(ts(), &chain.Transaction{
		From: victim, To: to(addr), Value: ethtypes.Ether(10),
	})
	if !rs[0].Status {
		t.Fatalf("plain send failed: %s", rs[0].Err)
	}
	if got := c.BalanceOf(operator); got.Cmp(ethtypes.Ether(2)) != 0 {
		t.Errorf("operator got %s, want 2 ETH", got)
	}
	if got := c.BalanceOf(affiliate); got.Cmp(ethtypes.Ether(8)) != 0 {
		t.Errorf("affiliate got %s, want 8 ETH", got)
	}
}

func TestNetworkMergeStyle(t *testing.T) {
	c := newChain(t)
	addr := deploySpec(t, c, Spec{
		Style: StyleNetworkMerge, Operator: operator,
		OperatorPerMille: 300, Authorized: authorized,
	})
	data, err := ClaimData(NetworkMergeSignature, affiliate)
	if err != nil {
		t.Fatal(err)
	}
	_, rs := c.Mine(ts(), &chain.Transaction{
		From: victim, To: to(addr), Value: ethtypes.Ether(10), Data: data,
	})
	if !rs[0].Status {
		t.Fatalf("networkMerge failed: %s", rs[0].Err)
	}
	if got := c.BalanceOf(operator); got.Cmp(ethtypes.Ether(3)) != 0 {
		t.Errorf("operator got %s, want 3 ETH", got)
	}
}

func TestFractionalRatioExact(t *testing.T) {
	// 12.5% of 8 ETH = 1 ETH exactly.
	c := newChain(t)
	addr := deploySpec(t, c, Spec{
		Style: StyleClaim, Operator: operator,
		OperatorPerMille: 125, Authorized: authorized,
	})
	data, _ := ClaimData("Claim(address)", affiliate)
	_, rs := c.Mine(ts(), &chain.Transaction{
		From: victim, To: to(addr), Value: ethtypes.Ether(8), Data: data,
	})
	if !rs[0].Status {
		t.Fatal(rs[0].Err)
	}
	if got := c.BalanceOf(operator); got.Cmp(ethtypes.Ether(1)) != 0 {
		t.Errorf("operator got %s, want 1 ETH", got)
	}
	if got := c.BalanceOf(affiliate); got.Cmp(ethtypes.Ether(7)) != 0 {
		t.Errorf("affiliate got %s, want 7 ETH", got)
	}
}

func TestMulticallStealsERC20(t *testing.T) {
	c := newChain(t)
	admin := deployer
	c.RegisterNative(usdcAddr, tokens.NewERC20(usdcAddr, "USDC", admin))

	addr := deploySpec(t, c, Spec{
		Style: StyleClaim, Operator: operator,
		OperatorPerMille: 200, Authorized: authorized,
	})

	// Mint to victim; victim signs the phishing approval to the
	// contract.
	mint, _ := ethabi.EncodeCall("mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{victim, big.NewInt(1000)})
	c.Mine(ts(), &chain.Transaction{From: admin, To: to(usdcAddr), Data: mint})
	approve, _ := ethabi.EncodeCall("approve(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{addr, big.NewInt(1000)})
	_, rs := c.Mine(ts(), &chain.Transaction{From: victim, To: to(usdcAddr), Data: approve})
	if !rs[0].Status {
		t.Fatalf("approve failed: %s", rs[0].Err)
	}

	// The operator's executor triggers multicall with two pulls: 20% to
	// the operator, 80% to the affiliate (Fig. 3 middle path).
	pull := func(dst ethtypes.Address, amt int64) MulticallStep {
		payload, _ := ethabi.EncodeCall("transferFrom(address,address,uint256)",
			[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
			[]any{victim, dst, big.NewInt(amt)})
		return MulticallStep{Target: usdcAddr, Payload: payload}
	}
	mc, err := MulticallData([]MulticallStep{pull(operator, 200), pull(affiliate, 800)})
	if err != nil {
		t.Fatal(err)
	}
	_, rs = c.Mine(ts(), &chain.Transaction{From: authorized, To: to(addr), Data: mc})
	if !rs[0].Status {
		t.Fatalf("multicall failed: %s", rs[0].Err)
	}
	r := rs[0]
	if len(r.Transfers) != 2 {
		t.Fatalf("fund flow edges = %d, want 2", len(r.Transfers))
	}
	for i, want := range []struct {
		dst ethtypes.Address
		amt int64
	}{{operator, 200}, {affiliate, 800}} {
		tr := r.Transfers[i]
		if tr.From != victim || tr.To != want.dst || tr.Amount.Uint64() != uint64(want.amt) {
			t.Errorf("edge %d = %+v", i, tr)
		}
		if tr.Asset.Kind != chain.AssetERC20 {
			t.Errorf("edge %d asset = %v", i, tr.Asset.Kind)
		}
	}
}

func TestMulticallAuthEnforced(t *testing.T) {
	c := newChain(t)
	addr := deploySpec(t, c, Spec{
		Style: StyleClaim, Operator: operator,
		OperatorPerMille: 200, Authorized: authorized,
	})
	mc, _ := MulticallData([]MulticallStep{{Target: operator, Payload: nil}})
	_, rs := c.Mine(ts(), &chain.Transaction{From: victim, To: to(addr), Data: mc})
	if rs[0].Status {
		t.Error("multicall by unauthorized caller succeeded")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{Style: StyleClaim, Operator: operator, OperatorPerMille: 0},
		{Style: StyleClaim, Operator: operator, OperatorPerMille: 1000},
		{Style: StyleClaim, OperatorPerMille: 200},
		{Style: StyleFallback, Operator: operator, OperatorPerMille: 200}, // no affiliate
	}
	for i, spec := range cases {
		if _, err := Deploy(spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestDecompileTable3(t *testing.T) {
	c := newChain(t)
	angel := deploySpec(t, c, Spec{Style: StyleClaim, Operator: operator,
		OperatorPerMille: 200, Authorized: authorized})
	inferno := deploySpec(t, c, Spec{Style: StyleFallback, Operator: operator,
		Affiliate: affiliate, OperatorPerMille: 200, Authorized: authorized})
	pink := deploySpec(t, c, Spec{Style: StyleNetworkMerge, Operator: operator,
		OperatorPerMille: 300, Authorized: authorized})

	read := chainReader(c)

	an := Decompile(c.CodeAt(angel), angel, read)
	if !strings.Contains(an.ETHFunction, "named Claim") {
		t.Errorf("angel ETH function = %q", an.ETHFunction)
	}
	if !an.HasMulticall || an.TokenFunction == "" {
		t.Error("angel multicall not detected")
	}
	if an.OperatorPerMille != 200 {
		t.Errorf("angel ratio = %d‰, want 200", an.OperatorPerMille)
	}
	if an.Operator != operator {
		t.Errorf("angel operator = %s", an.Operator)
	}

	in := Decompile(c.CodeAt(inferno), inferno, read)
	if in.ETHFunction != "a payable fallback function" {
		t.Errorf("inferno ETH function = %q", in.ETHFunction)
	}
	if !in.PayableFallback || !in.HasMulticall {
		t.Error("inferno shape not detected")
	}
	if in.Affiliate != affiliate {
		t.Errorf("inferno affiliate = %s", in.Affiliate)
	}

	pk := Decompile(c.CodeAt(pink), pink, read)
	if !strings.Contains(pk.ETHFunction, "named networkMerge") {
		t.Errorf("pink ETH function = %q", pk.ETHFunction)
	}
	if pk.OperatorPerMille != 300 {
		t.Errorf("pink ratio = %d‰", pk.OperatorPerMille)
	}
}

func TestExtractSelectorsIgnoresPushData(t *testing.T) {
	c := newChain(t)
	addr := deploySpec(t, c, Spec{Style: StyleClaim, Operator: operator,
		OperatorPerMille: 200, Authorized: authorized})
	sels := ExtractSelectors(c.CodeAt(addr))
	if len(sels) != 2 {
		t.Fatalf("extracted %d selectors, want 2 (main + multicall)", len(sels))
	}
	var haveClaim, haveMC bool
	for _, s := range sels {
		if s == ethabi.Selector("Claim(address)") {
			haveClaim = true
		}
		if s == SelMulticall {
			haveMC = true
		}
	}
	if !haveClaim || !haveMC {
		t.Errorf("selectors = %x", sels)
	}
}

func TestAllClaimSignatureVariants(t *testing.T) {
	c := newChain(t)
	for _, sig := range ClaimSignatures {
		addr := deploySpec(t, c, Spec{
			Style: StyleClaim, MainSignature: sig, Operator: operator,
			OperatorPerMille: 150, Authorized: authorized,
		})
		data, err := ClaimData(sig, affiliate)
		if err != nil {
			t.Fatal(err)
		}
		_, rs := c.Mine(ts(), &chain.Transaction{
			From: victim, To: to(addr), Value: ethtypes.Ether(2), Data: data,
		})
		if !rs[0].Status {
			t.Errorf("%s: tx failed: %s", sig, rs[0].Err)
		}
		an := Decompile(c.CodeAt(addr), addr, chainReader(c))
		if an.OperatorPerMille != 150 {
			t.Errorf("%s: ratio %d‰", sig, an.OperatorPerMille)
		}
	}
}

func TestPaperRatios(t *testing.T) {
	// Every documented operator ratio (§4.3) splits exactly at the
	// probe value.
	for _, pm := range []int64{100, 125, 150, 175, 200, 250, 300, 330, 400} {
		c := newChain(t)
		addr := deploySpec(t, c, Spec{Style: StyleClaim, Operator: operator,
			OperatorPerMille: pm, Authorized: authorized})
		an := Decompile(c.CodeAt(addr), addr, chainReader(c))
		if an.OperatorPerMille != pm {
			t.Errorf("ratio %d‰ probed as %d‰", pm, an.OperatorPerMille)
		}
	}
}
