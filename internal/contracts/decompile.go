package contracts

import (
	"encoding/hex"
	"fmt"
	"math/big"
	"sort"

	"repro/internal/ethabi"
	"repro/internal/ethtypes"
	"repro/internal/evm"
)

// SelectorInfo describes one externally callable function recovered
// from bytecode.
type SelectorInfo struct {
	Selector  [4]byte
	Signature string // empty if not in the dictionary
	Payable   bool   // accepts ETH (determined dynamically)
}

// Analysis is the decompiler's report for one contract — the unit of
// comparison in the paper's Table 3.
type Analysis struct {
	Selectors       []SelectorInfo
	PayableFallback bool
	HasMulticall    bool
	// ETHFunction describes how the contract steals ETH, phrased as in
	// Table 3 ("a payable fallback function" / "a payable function
	// named X").
	ETHFunction string
	// TokenFunction describes the ERC-20/NFT theft entry.
	TokenFunction string
	// OperatorPerMille is the observed operator split (‰) from dynamic
	// probing, 0 if no split was observed.
	OperatorPerMille int64
	// Operator and Affiliate are the probe-observed payout targets.
	Operator  ethtypes.Address
	Affiliate ethtypes.Address
	// Warnings lists static/dynamic disagreements when the analysis was
	// produced by DecompileChecked; empty means the two passes agree.
	Warnings []string
}

// signatureDictionary maps known selectors back to signatures, the way
// analysts use 4-byte databases. It covers the drainer entry points and
// common token functions.
var signatureDictionary = buildDictionary()

func buildDictionary() map[[4]byte]string {
	sigs := append([]string{}, ClaimSignatures...)
	sigs = append(sigs,
		NetworkMergeSignature,
		MulticallSignature,
		"transfer(address,uint256)",
		"transferFrom(address,address,uint256)",
		"approve(address,uint256)",
	)
	dict := make(map[[4]byte]string, len(sigs))
	for _, sig := range sigs {
		dict[ethabi.Selector(sig)] = sig
	}
	return dict
}

// LookupSignature resolves a selector against the dictionary.
func LookupSignature(sel [4]byte) (string, bool) {
	sig, ok := signatureDictionary[sel]
	return sig, ok
}

// ExtractSelectors statically scans bytecode for the dispatch idiom
// (PUSH4 <sel> EQ) and returns the referenced selectors in code order.
func ExtractSelectors(code []byte) [][4]byte {
	var out [][4]byte
	seen := make(map[[4]byte]bool)
	for pc := 0; pc < len(code); pc++ {
		op := code[pc]
		if op >= evm.PUSH1 && op <= evm.PUSH1+31 {
			n := int(op-evm.PUSH1) + 1
			if op == evm.PUSH1+3 && pc+4 < len(code) && code[pc+5] == evm.EQ {
				var sel [4]byte
				copy(sel[:], code[pc+1:pc+5])
				if !seen[sel] {
					seen[sel] = true
					out = append(out, sel)
				}
			}
			pc += n
		}
	}
	return out
}

// StorageReader supplies deployed-contract storage to dynamic probes.
// chain.Chain's storage can be adapted to this; a nil reader probes with
// empty storage.
type StorageReader func(addr ethtypes.Address, key ethtypes.Hash) ethtypes.Hash

// probeHost sandboxes dynamic probes: reads come from the supplied
// snapshot, writes are kept locally, nested calls always succeed and
// are recorded along with their input payloads. DELEGATECALL code
// lookups are recorded too — executed proxy evidence — and resolve
// through the optional code map (absent entries run as empty code,
// which succeeds with empty returndata).
type probeHost struct {
	self      ethtypes.Address
	read      StorageReader
	writes    map[ethtypes.Hash]ethtypes.Hash
	calls     []probeCall
	codeReads []ethtypes.Address
	code      map[ethtypes.Address][]byte
	balance   ethtypes.Wei
}

type probeCall struct {
	to    ethtypes.Address
	value ethtypes.Wei
	input []byte
}

func (h *probeHost) Balance(a ethtypes.Address) ethtypes.Wei { return h.balance }

func (h *probeHost) StorageGet(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash {
	if v, ok := h.writes[k]; ok {
		return v
	}
	if h.read != nil {
		return h.read(a, k)
	}
	return ethtypes.Hash{}
}

func (h *probeHost) StorageSet(a ethtypes.Address, k, v ethtypes.Hash) {
	if h.writes == nil {
		h.writes = make(map[ethtypes.Hash]ethtypes.Hash)
	}
	h.writes[k] = v
}

func (h *probeHost) Call(from, to ethtypes.Address, value ethtypes.Wei, input []byte, depth int) ([]byte, error) {
	h.calls = append(h.calls, probeCall{to: to, value: value, input: append([]byte(nil), input...)})
	return nil, nil
}

// CodeOf implements evm.CodeHost so probes execute DELEGATECALL; every
// lookup is recorded as proxy evidence.
func (h *probeHost) CodeOf(a ethtypes.Address) []byte {
	h.codeReads = append(h.codeReads, a)
	return h.code[a]
}

func (h *probeHost) EmitLog(a ethtypes.Address, topics []ethtypes.Hash, data []byte) {}

// probeCaller is the EOA every dynamic probe runs as.
var probeCaller = ethtypes.Addr("0x00000000000000000000000000000000000f00ba")

// probe executes code with the given calldata and value in a sandbox,
// reporting success and the outgoing value-bearing calls.
func probe(code []byte, self ethtypes.Address, read StorageReader, input []byte, value ethtypes.Wei) (bool, []probeCall) {
	ok, host := probeTrace(code, self, read, input, value)
	return ok, host.calls
}

// probeTrace is probe returning the full host so callers can inspect
// recorded call inputs and code reads.
func probeTrace(code []byte, self ethtypes.Address, read StorageReader, input []byte, value ethtypes.Wei) (bool, *probeHost) {
	host := &probeHost{self: self, read: read, balance: ethtypes.Ether(1_000_000)}
	_, err := evm.Run(&evm.Context{
		Code:   code,
		Self:   self,
		Caller: probeCaller,
		Value:  value,
		Input:  input,
		Gas:    2_000_000,
		Host:   host,
	})
	return err == nil, host
}

// probeValue is the ETH amount used for split probing; divisible by
// 1000 so every documented ratio yields an exact operator share.
var probeValue = ethtypes.NewWei(1_000_000)

// ProbeAffiliate is the affiliate address the dynamic prober passes as
// the calldata argument of named ETH-theft functions. A contract that
// forwards the remainder here takes its affiliate from calldata — the
// claim-style idiom — which is what the static analyzer reports as
// AffiliateFromCalldata.
var ProbeAffiliate = ethtypes.Addr("0x00000000000000000000000000000000000aff17")

// Decompile analyzes runtime bytecode: static selector extraction plus
// dynamic payability and split probing.
func Decompile(code []byte, self ethtypes.Address, read StorageReader) Analysis {
	var an Analysis

	// Static pass.
	for _, sel := range ExtractSelectors(code) {
		info := SelectorInfo{Selector: sel}
		if sig, ok := LookupSignature(sel); ok {
			info.Signature = sig
		}
		an.Selectors = append(an.Selectors, info)
		if sel == SelMulticall {
			an.HasMulticall = true
		}
	}

	// Dynamic pass: payable fallback = plain value send succeeds and
	// splits.
	okFallback, fbCalls := probe(code, self, read, nil, probeValue)
	an.PayableFallback = okFallback && len(fbCalls) > 0

	// Dynamic pass per selector: call with one address argument and
	// attached value; payable if execution succeeds.
	for i, info := range an.Selectors {
		input, err := ethabi.EncodeCall("probe(address)", []ethabi.Type{ethabi.AddressT}, []any{ProbeAffiliate})
		if err != nil {
			continue
		}
		copy(input[:4], info.Selector[:])
		ok, calls := probe(code, self, read, input, probeValue)
		an.Selectors[i].Payable = ok
		if ok && len(calls) == 2 && info.Selector != SelMulticall {
			an.recordSplit(calls)
			if info.Signature != "" {
				an.ETHFunction = fmt.Sprintf("a payable function named %s", baseName(info.Signature))
			} else {
				an.ETHFunction = fmt.Sprintf("a payable function with selector 0x%s", hex.EncodeToString(info.Selector[:]))
			}
		}
	}
	if an.ETHFunction == "" && an.PayableFallback {
		an.recordSplit(fbCalls)
		an.ETHFunction = "a payable fallback function"
	}
	if an.HasMulticall {
		an.TokenFunction = "a multicall function"
	}
	sort.Slice(an.Selectors, func(i, j int) bool {
		return string(an.Selectors[i].Selector[:]) < string(an.Selectors[j].Selector[:])
	})
	return an
}

// recordSplit derives the operator ratio from a two-call probe trace.
// The operator is the smaller share per the paper's §4.3 observation.
func (an *Analysis) recordSplit(calls []probeCall) {
	if len(calls) != 2 {
		return
	}
	a, b := calls[0], calls[1]
	total := a.value.Add(b.value)
	if total.IsZero() {
		return
	}
	op, aff := a, b
	if op.value.Cmp(aff.value) > 0 {
		op, aff = aff, op
	}
	ratio := new(big.Int).Mul(op.value.Big(), big.NewInt(1000))
	ratio.Div(ratio, total.Big())
	an.OperatorPerMille = ratio.Int64()
	an.Operator = op.to
	an.Affiliate = aff.to
}

// baseName strips the parameter list from a signature.
func baseName(sig string) string {
	for i, r := range sig {
		if r == '(' {
			return sig[:i]
		}
	}
	return sig
}
