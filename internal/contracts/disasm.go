package contracts

import (
	"fmt"
	"strings"

	"repro/internal/evm"
)

// opNames maps implemented opcodes to their mnemonics for the
// disassembler.
var opNames = map[byte]string{
	evm.STOP: "STOP", evm.ADD: "ADD", evm.MUL: "MUL", evm.SUB: "SUB",
	evm.DIV: "DIV", evm.MOD: "MOD", evm.LT: "LT", evm.GT: "GT",
	evm.EQ: "EQ", evm.ISZERO: "ISZERO", evm.AND: "AND", evm.OR: "OR",
	evm.XOR: "XOR", evm.NOT: "NOT", evm.SHL: "SHL", evm.SHR: "SHR",
	evm.ADDRESS: "ADDRESS", evm.BALANCE: "BALANCE", evm.CALLER: "CALLER",
	evm.CALLVALUE: "CALLVALUE", evm.CALLDATALOAD: "CALLDATALOAD",
	evm.CALLDATASIZE: "CALLDATASIZE", evm.CALLDATACOPY: "CALLDATACOPY",
	evm.CODESIZE: "CODESIZE", evm.CODECOPY: "CODECOPY",
	evm.SELFBALANCE: "SELFBALANCE", evm.POP: "POP", evm.MLOAD: "MLOAD",
	evm.MSTORE: "MSTORE", evm.SLOAD: "SLOAD", evm.SSTORE: "SSTORE",
	evm.JUMP: "JUMP", evm.JUMPI: "JUMPI", evm.PC: "PC", evm.GAS: "GAS",
	evm.JUMPDEST: "JUMPDEST", evm.PUSH0: "PUSH0", evm.CALL: "CALL",
	evm.RETURN: "RETURN", evm.REVERT: "REVERT", evm.CREATE: "CREATE",
}

// Instruction is one decoded opcode.
type Instruction struct {
	PC       int
	Op       byte
	Mnemonic string
	// Operand holds PUSH immediates.
	Operand []byte
}

// String renders "0042: PUSH4 0xa9059cbb".
func (in Instruction) String() string {
	if len(in.Operand) > 0 {
		return fmt.Sprintf("%04x: %s 0x%x", in.PC, in.Mnemonic, in.Operand)
	}
	return fmt.Sprintf("%04x: %s", in.PC, in.Mnemonic)
}

// Disassemble decodes runtime bytecode into instructions. Unknown
// opcodes decode as "INVALID(0xnn)" without stopping, since analysts
// routinely meet junk bytes in real deployments.
func Disassemble(code []byte) []Instruction {
	var out []Instruction
	for pc := 0; pc < len(code); pc++ {
		op := code[pc]
		in := Instruction{PC: pc, Op: op}
		switch {
		case op >= evm.PUSH1 && op <= evm.PUSH1+31:
			n := int(op-evm.PUSH1) + 1
			in.Mnemonic = fmt.Sprintf("PUSH%d", n)
			end := pc + 1 + n
			if end > len(code) {
				end = len(code)
			}
			in.Operand = append([]byte{}, code[pc+1:end]...)
			pc = end - 1
		case op >= evm.DUP1 && op <= evm.DUP1+15:
			in.Mnemonic = fmt.Sprintf("DUP%d", op-evm.DUP1+1)
		case op >= evm.SWAP1 && op <= evm.SWAP1+15:
			in.Mnemonic = fmt.Sprintf("SWAP%d", op-evm.SWAP1+1)
		case op >= evm.LOG0 && op <= evm.LOG0+4:
			in.Mnemonic = fmt.Sprintf("LOG%d", op-evm.LOG0)
		default:
			if name, ok := opNames[op]; ok {
				in.Mnemonic = name
			} else {
				in.Mnemonic = fmt.Sprintf("INVALID(0x%02x)", op)
			}
		}
		out = append(out, in)
	}
	return out
}

// FormatDisassembly renders a full listing, annotating selector
// comparisons with dictionary signatures.
func FormatDisassembly(code []byte) string {
	var sb strings.Builder
	for _, in := range Disassemble(code) {
		sb.WriteString(in.String())
		if in.Mnemonic == "PUSH4" && len(in.Operand) == 4 {
			var sel [4]byte
			copy(sel[:], in.Operand)
			if sig, ok := LookupSignature(sel); ok {
				sb.WriteString("  // ")
				sb.WriteString(sig)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
