package contracts

import (
	"strings"

	"repro/internal/evmstatic"
)

// Instruction is one decoded opcode. The disassembler itself lives in
// internal/evmstatic; the alias keeps this package's historical API.
type Instruction = evmstatic.Instruction

// Disassemble decodes runtime bytecode into instructions. Unknown
// opcodes decode as "INVALID(0xnn)" without stopping, and a PUSH whose
// operand runs past the end of the code is flagged Truncated rather
// than silently shortened.
func Disassemble(code []byte) []Instruction {
	return evmstatic.Disassemble(code)
}

// FormatDisassembly renders a full listing, annotating selector
// comparisons with dictionary signatures and truncated pushes with a
// "!truncated" marker.
func FormatDisassembly(code []byte) string {
	var sb strings.Builder
	for _, in := range Disassemble(code) {
		sb.WriteString(in.String())
		if in.Mnemonic == "PUSH4" && len(in.Operand) == 4 && !in.Truncated {
			var sel [4]byte
			copy(sel[:], in.Operand)
			if sig, ok := LookupSignature(sel); ok {
				sb.WriteString("  // ")
				sb.WriteString(sig)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
