package contracts

import (
	"math/big"
	"reflect"
	"testing"

	"repro/internal/chain"
	"repro/internal/ethabi"
	"repro/internal/ethtypes"
	"repro/internal/evmstatic"
	"repro/internal/tokens"
)

var (
	receiver = ethtypes.Addr("0xbadbadbadbadbadbadbadbadbadbadbadbadbad1")
	payee1   = ethtypes.Addr("0x9100000000000000000000000000000000000001")
	payee2   = ethtypes.Addr("0x9200000000000000000000000000000000000002")
	payee3   = ethtypes.Addr("0x9300000000000000000000000000000000000003")
	implAddr = ethtypes.Addr("0x1111111111111111111111111111111111111111")
)

func testPyramidSpec() PyramidSpec {
	return PyramidSpec{Levels: []PyramidLevel{
		{Payee: payee1, Amount: big.NewInt(500)},
		{Payee: payee2, Amount: big.NewInt(300)},
		{Payee: payee3, Amount: big.NewInt(200)},
	}}
}

func testAirdropSpec() AirdropSpec {
	return AirdropSpec{
		Owner:      authorized,
		Recipients: []ethtypes.Address{payee1, payee2, payee3},
		Amount:     big.NewInt(250),
	}
}

// familyCase is one cell row of the style × family agreement matrix.
type familyCase struct {
	name string
	init func() ([]byte, error)
	want []string // expected sorted family labels; nil = no fingerprints
}

func familyCases() []familyCase {
	ps := func(style Style) func() ([]byte, error) {
		return func() ([]byte, error) {
			return Deploy(Spec{Style: style, Operator: operator, Affiliate: affiliate,
				OperatorPerMille: 200, Authorized: authorized})
		}
	}
	cases := []familyCase{
		{"claim", ps(StyleClaim), nil},
		{"fallback", ps(StyleFallback), nil},
		{"network-merge", ps(StyleNetworkMerge), nil},
		{"pyramid", func() ([]byte, error) { return PyramidDeploy(testPyramidSpec()) },
			[]string{"pyramid-payout"}},
		{"minimal-proxy", func() ([]byte, error) { return MinimalProxyDeploy(implAddr) },
			[]string{"proxy"}},
		{"clone", func() ([]byte, error) {
			return CloneDeploy(implAddr, Spec{Style: StyleFallback, Operator: operator,
				Affiliate: affiliate, OperatorPerMille: 150})
		}, []string{"proxy"}},
		{"slot-proxy", func() ([]byte, error) { return SlotProxyDeploy(implAddr) },
			[]string{"proxy"}},
		// Adversarial negatives: structural twins of the scam shapes
		// that must produce zero fingerprints.
		{"benign-router", BenignRouterDeploy, nil},
		{"allowance-helper", AllowanceHelperDeploy, nil},
		{"airdrop", func() ([]byte, error) { return AirdropDeploy(testAirdropSpec()) }, nil},
	}
	for _, sink := range ApprovalSinkSignatures {
		sink := sink
		cases = append(cases, familyCase{
			name: "approval-" + baseName(sink),
			init: func() ([]byte, error) {
				return ApprovalPhisherDeploy(ApprovalPhisherSpec{SinkSignature: sink, Receiver: receiver})
			},
			want: []string{"approval-phishing"},
		})
	}
	return cases
}

// storesReader adapts constructor stores into the prober's storage
// view, mirroring what a fresh deployment's state looks like.
func storesReader(stores []evmstatic.StorageSlot) StorageReader {
	m := make(map[ethtypes.Hash]ethtypes.Hash, len(stores))
	for _, s := range stores {
		var k, v ethtypes.Hash
		s.Slot.FillBytes(k[:])
		s.Value.FillBytes(v[:])
		m[k] = v
	}
	return func(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash { return m[k] }
}

// TestFingerprintAgreementMatrix checks, for every contract style the
// generator produces, that the static fingerprint engine and the
// dynamic prober independently reach the expected family verdict —
// including zero false positives on the adversarial negatives.
func TestFingerprintAgreementMatrix(t *testing.T) {
	self := ethtypes.Addr("0x00000000000000000000000000000000005e1f00")
	for _, tc := range familyCases() {
		t.Run(tc.name, func(t *testing.T) {
			initcode, err := tc.init()
			if err != nil {
				t.Fatal(err)
			}
			rep, err := evmstatic.AnalyzeDeploy(initcode)
			if err != nil {
				t.Fatal(err)
			}
			want := tc.want
			if want == nil {
				want = []string{}
			}
			stat := evmstatic.FamilyNames(rep.Fingerprints)
			if !reflect.DeepEqual(stat, want) {
				t.Errorf("static families = %v, want %v\nfingerprints: %v", stat, want, rep.Fingerprints)
			}
			dyn := ProbeFamilies(rep.Runtime, self, storesReader(rep.ConstructorStores))
			if !reflect.DeepEqual(dyn, want) {
				t.Errorf("dynamic families = %v, want %v", dyn, want)
			}
			if warns := CrossValidateFingerprints(rep.Runtime, self,
				storesReader(rep.ConstructorStores), rep); len(warns) != 0 {
				t.Errorf("fingerprint cross-validation warnings: %v", warns)
			}
		})
	}
}

// TestApprovalPhisherEvidence pins the fingerprint's evidence fields:
// the forwarded sink selector and the hardcoded receiver.
func TestApprovalPhisherEvidence(t *testing.T) {
	for _, sink := range ApprovalSinkSignatures {
		initcode, err := ApprovalPhisherDeploy(ApprovalPhisherSpec{SinkSignature: sink, Receiver: receiver})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := evmstatic.AnalyzeDeploy(initcode)
		if err != nil {
			t.Fatal(err)
		}
		var fp *evmstatic.Fingerprint
		for i := range rep.Fingerprints {
			if rep.Fingerprints[i].Family == evmstatic.FamilyApprovalPhish {
				fp = &rep.Fingerprints[i]
			}
		}
		if fp == nil {
			t.Fatalf("%s: no approval-phishing fingerprint", sink)
		}
		if fp.SinkSelector != ethabi.Selector(sink) {
			t.Errorf("%s: sink selector %#x", sink, fp.SinkSelector)
		}
		if fp.Spender != receiver {
			t.Errorf("%s: spender %s, want %s", sink, fp.Spender, receiver)
		}
		if fp.Selector != ethabi.Selector(DrainSignature) {
			t.Errorf("%s: entry selector %#x", sink, fp.Selector)
		}
	}
}

// TestPyramidEvidence pins the pyramid fingerprint's leg and level
// counts.
func TestPyramidEvidence(t *testing.T) {
	initcode, err := PyramidDeploy(testPyramidSpec())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := evmstatic.AnalyzeDeploy(initcode)
	if err != nil {
		t.Fatal(err)
	}
	var fp *evmstatic.Fingerprint
	for i := range rep.Fingerprints {
		if rep.Fingerprints[i].Family == evmstatic.FamilyPyramid {
			fp = &rep.Fingerprints[i]
		}
	}
	if fp == nil {
		t.Fatal("no pyramid fingerprint")
	}
	if fp.Legs != 3 || fp.Levels != 3 {
		t.Errorf("legs=%d levels=%d, want 3/3", fp.Legs, fp.Levels)
	}
}

// TestApprovalPhisherDrainsOnChain runs the approval-phishing theft
// end to end: the victim signs the phishing approval, the operator
// relays drain(token, victim, amount), and the token moves to the
// hardcoded receiver.
func TestApprovalPhisherDrainsOnChain(t *testing.T) {
	c := newChain(t)
	admin := deployer
	c.RegisterNative(usdcAddr, tokens.NewERC20(usdcAddr, "USDC", admin))

	initcode, err := ApprovalPhisherDeploy(ApprovalPhisherSpec{Receiver: receiver})
	if err != nil {
		t.Fatal(err)
	}
	_, rs := c.Mine(ts(), &chain.Transaction{From: deployer, Data: initcode})
	if !rs[0].Status {
		t.Fatalf("deploy failed: %s", rs[0].Err)
	}
	phisher := rs[0].ContractAddress

	mint, _ := ethabi.EncodeCall("mint(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{victim, big.NewInt(1000)})
	c.Mine(ts(), &chain.Transaction{From: admin, To: to(usdcAddr), Data: mint})
	approve, _ := ethabi.EncodeCall("approve(address,uint256)",
		[]ethabi.Type{ethabi.AddressT, ethabi.Uint256T}, []any{phisher, big.NewInt(1000)})
	c.Mine(ts(), &chain.Transaction{From: victim, To: to(usdcAddr), Data: approve})

	drain, err := ethabi.EncodeCall(DrainSignature,
		[]ethabi.Type{ethabi.AddressT, ethabi.AddressT, ethabi.Uint256T},
		[]any{usdcAddr, victim, big.NewInt(1000)})
	if err != nil {
		t.Fatal(err)
	}
	_, rs = c.Mine(ts(), &chain.Transaction{From: authorized, To: to(phisher), Data: drain})
	if !rs[0].Status {
		t.Fatalf("drain failed: %s", rs[0].Err)
	}
	if len(rs[0].Transfers) != 1 {
		t.Fatalf("transfers = %d, want 1", len(rs[0].Transfers))
	}
	tr := rs[0].Transfers[0]
	if tr.From != victim || tr.To != receiver || tr.Amount.Uint64() != 1000 {
		t.Errorf("transfer = %+v", tr)
	}
}

// TestPyramidPaysOutOnChain joins the pyramid with the exact matrix
// total and expects each level to receive its constant amount.
func TestPyramidPaysOutOnChain(t *testing.T) {
	c := newChain(t)
	spec := testPyramidSpec()
	initcode, err := PyramidDeploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, rs := c.Mine(ts(), &chain.Transaction{From: deployer, Data: initcode})
	if !rs[0].Status {
		t.Fatalf("deploy failed: %s", rs[0].Err)
	}
	addr := rs[0].ContractAddress

	join, err := ethabi.EncodeCall(JoinSignature, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rs = c.Mine(ts(), &chain.Transaction{
		From: victim, To: to(addr), Data: join,
		Value: ethtypes.WeiFromBig(spec.Total()),
	})
	if !rs[0].Status {
		t.Fatalf("join failed: %s", rs[0].Err)
	}
	for i, lv := range spec.Levels {
		got := c.BalanceOf(lv.Payee)
		if got.Big().Cmp(lv.Amount) != 0 {
			t.Errorf("level %d payee balance = %s, want %s", i, got, lv.Amount)
		}
	}
}

// TestCloneDelegatesToImplementation deploys a shared fallback-style
// implementation and an EIP-1167 clone carrying its own split config,
// then checks both the on-chain behavior (the clone splits per its own
// storage) and the static side (AnalyzeResolved follows the proxy and
// recovers the implementation's split under the clone's storage).
func TestCloneDelegatesToImplementation(t *testing.T) {
	c := newChain(t)
	implSpec := Spec{Style: StyleFallback, Operator: operator, Affiliate: affiliate,
		OperatorPerMille: 200, Authorized: authorized}
	impl := deploySpec(t, c, implSpec)

	cloneAffiliate := ethtypes.Addr("0xafc0000000000000000000000000000000000009")
	cloneInit, err := CloneDeploy(impl, Spec{Style: StyleFallback, Operator: operator,
		Affiliate: cloneAffiliate, OperatorPerMille: 150})
	if err != nil {
		t.Fatal(err)
	}
	_, rs := c.Mine(ts(), &chain.Transaction{From: deployer, Data: cloneInit})
	if !rs[0].Status {
		t.Fatalf("clone deploy failed: %s", rs[0].Err)
	}
	clone := rs[0].ContractAddress

	// A plain send to the clone splits 150/850 per the clone's storage,
	// not the implementation's.
	_, rs = c.Mine(ts(), &chain.Transaction{
		From: victim, To: to(clone), Value: ethtypes.NewWei(1000),
	})
	if !rs[0].Status {
		t.Fatalf("send to clone failed: %s", rs[0].Err)
	}
	if got := c.BalanceOf(operator).Big().Int64(); got != 150 {
		t.Errorf("operator received %d, want 150", got)
	}
	if got := c.BalanceOf(cloneAffiliate).Big().Int64(); got != 850 {
		t.Errorf("clone affiliate received %d, want 850", got)
	}

	// Static resolution: the clone's code is a proxy; following it with
	// the clone's storage recovers the implementation's split facts.
	resolve := func(a ethtypes.Address) ([]byte, error) { return c.CodeAt(a), nil }
	rep := evmstatic.AnalyzeResolved(c.CodeAt(clone), StaticStorage(clone, chainReader(c)), resolve)
	if !rep.ProxyResolved || rep.ProxyImpl != impl {
		t.Fatalf("proxy resolution: resolved=%v impl=%s", rep.ProxyResolved, rep.ProxyImpl)
	}
	if !evmstatic.HasFamily(rep.Fingerprints, evmstatic.FamilyProxy) {
		t.Error("proxy fingerprint missing after resolution")
	}
	if !rep.HasSplit || !rep.RatioKnown || rep.OperatorPerMille != 150 {
		t.Errorf("resolved split = %+v", rep)
	}
	if !rep.AffiliateKnown || rep.Affiliate != cloneAffiliate {
		t.Errorf("resolved affiliate = %s, want %s", rep.Affiliate, cloneAffiliate)
	}
}
