// Package contracts generates and analyzes the EVM bytecode of DaaS
// profit-sharing contracts.
//
// Three template styles mirror the dominant families of the paper's
// Table 3: a payable named claim function (Angel Drainer), a payable
// fallback function (Inferno Drainer), and a payable "Network Merge"
// function (Pink Drainer). Every template also carries the multicall
// entry used to steal ERC-20 tokens and NFTs. The decompiler recovers
// selectors statically and payability/ratios dynamically, standing in
// for the Dedaub decompilation step of the paper.
package contracts

import (
	"fmt"
	"math/big"

	"repro/internal/ethabi"
	"repro/internal/ethtypes"
	"repro/internal/evm"
)

// Style selects the profit-sharing template family.
type Style int

// Template styles, named for the DaaS family whose deployed contracts
// they match.
const (
	// StyleClaim uses a payable function named Claim(address) to steal
	// ETH (Angel Drainer).
	StyleClaim Style = iota
	// StyleFallback uses the payable fallback function; the affiliate
	// address is fixed in storage at deployment (Inferno Drainer).
	StyleFallback
	// StyleNetworkMerge uses a payable function named
	// networkMerge(address) (Pink Drainer).
	StyleNetworkMerge
)

func (s Style) String() string {
	switch s {
	case StyleClaim:
		return "claim"
	case StyleFallback:
		return "fallback"
	case StyleNetworkMerge:
		return "network-merge"
	default:
		return "unknown"
	}
}

// Storage slot assignments shared by all templates.
var (
	slotOperator   = big.NewInt(0)
	slotAffiliate  = big.NewInt(1)
	slotRatio      = big.NewInt(2) // operator share in per-mille (‰)
	slotAuthorized = big.NewInt(3) // account allowed to invoke multicall
)

// MulticallSignature is the token/NFT theft entry shared by dominant
// families.
const MulticallSignature = "multicall((address,bytes)[])"

// SelMulticall is the multicall selector.
var SelMulticall = ethabi.Selector(MulticallSignature)

// ClaimSignatures are the payable-function names observed across
// claim-style drainer deployments (paper §4.2: "claim", "mint", ...).
var ClaimSignatures = []string{
	"Claim(address)",
	"claim(address)",
	"claimRewards(address)",
	"mint(address)",
	"claimReward(address)",
	"securityUpdate(address)",
}

// NetworkMergeSignature is Pink Drainer's ETH-theft function.
const NetworkMergeSignature = "networkMerge(address)"

// Spec parameterizes one profit-sharing contract deployment.
type Spec struct {
	Style Style
	// MainSignature overrides the named payable function; it must take
	// a single address argument. Empty selects the style default.
	MainSignature string
	// Operator receives OperatorPerMille ‰ of every theft.
	Operator ethtypes.Address
	// Affiliate receives the remainder on fallback-style contracts
	// (named styles take the affiliate from calldata).
	Affiliate ethtypes.Address
	// OperatorPerMille is the operator share in tenths of a percent,
	// e.g. 200 = 20%, 175 = 17.5%.
	OperatorPerMille int64
	// Authorized is the only account allowed to call multicall
	// (typically an operator-run executor EOA).
	Authorized ethtypes.Address
}

// mainSignature resolves the named ETH-theft function for the spec.
func (s Spec) mainSignature() string {
	if s.MainSignature != "" {
		return s.MainSignature
	}
	switch s.Style {
	case StyleNetworkMerge:
		return NetworkMergeSignature
	default:
		return ClaimSignatures[0]
	}
}

// Validate rejects specs that would assemble a broken contract.
func (s Spec) Validate() error {
	if s.OperatorPerMille <= 0 || s.OperatorPerMille >= 1000 {
		return fmt.Errorf("contracts: operator share %d‰ out of range (0, 1000)", s.OperatorPerMille)
	}
	if s.Operator.IsZero() {
		return fmt.Errorf("contracts: operator address unset")
	}
	if s.Style == StyleFallback && s.Affiliate.IsZero() {
		return fmt.Errorf("contracts: fallback style needs a fixed affiliate")
	}
	return nil
}

// Runtime assembles the runtime bytecode for the spec.
func Runtime(spec Spec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	a := evm.NewAssembler()

	// Dispatcher: short calldata goes to the fallback path.
	a.PushInt(4).Op(evm.CALLDATASIZE, evm.LT) // calldatasize < 4
	a.JumpIf("fallback")
	// sel := shr(224, calldataload(0))
	a.Op(evm.PUSH0, evm.CALLDATALOAD).PushInt(224).Op(evm.SHR)
	if spec.Style != StyleFallback {
		sel := ethabi.Selector(spec.mainSignature())
		a.Op(evm.DUP1).PushBytes(sel[:]).Op(evm.EQ).JumpIf("main")
	}
	mSel := SelMulticall
	a.Op(evm.DUP1).PushBytes(mSel[:]).Op(evm.EQ).JumpIf("multicall")
	a.Jump("fallback")

	if spec.Style != StyleFallback {
		// main: split ETH between operator and the affiliate passed as
		// the first calldata argument.
		a.Label("main")
		a.Op(evm.POP) // drop selector copy
		emitSplit(a, func(a *evm.Assembler) {
			a.PushInt(4).Op(evm.CALLDATALOAD) // affiliate from calldata
		})
	}

	// fallback: fallback-style contracts split here with the stored
	// affiliate; named styles accept plain ETH and do nothing further
	// (tokens sit until swept), matching observed deployments.
	a.Label("fallback")
	if spec.Style == StyleFallback {
		emitSplit(a, func(a *evm.Assembler) {
			a.Push(slotAffiliate).Op(evm.SLOAD) // affiliate from storage
		})
	} else {
		a.Stop()
	}

	// multicall: operator-only batch executor for ERC-20/NFT theft.
	a.Label("multicall")
	a.Op(evm.POP) // drop selector copy
	a.Op(evm.CALLER).Push(slotAuthorized).Op(evm.SLOAD, evm.EQ)
	a.JumpIf("mcok")
	a.Revert()
	a.Label("mcok")
	emitMulticall(a)

	return a.Assemble()
}

// emitSplit appends code that forwards CALLVALUE×ratio to the operator
// and the remainder to the affiliate produced by pushAffiliate.
// Terminates with STOP.
func emitSplit(a *evm.Assembler, pushAffiliate func(*evm.Assembler)) {
	// op := callvalue * sload(ratio) / 1000
	a.Op(evm.CALLVALUE).Push(slotRatio).Op(evm.SLOAD, evm.MUL)
	a.PushInt(1000).Op(evm.SWAP1, evm.DIV) // [op]
	// aff := callvalue - op
	a.Op(evm.DUP1, evm.CALLVALUE, evm.SUB) // [op, aff]
	a.Op(evm.SWAP1)                        // [aff, op]
	// call(gas, operator, op, 0, 0, 0, 0)
	a.Op(evm.PUSH0, evm.PUSH0, evm.PUSH0, evm.PUSH0) // outSize outOff inSize inOff
	a.Op(evm.DUP1 + 4)                               // value = op
	a.Push(slotOperator).Op(evm.SLOAD)               // to = operator
	a.Op(evm.GAS, evm.CALL, evm.POP)
	a.Op(evm.POP) // drop op → [aff]
	// call(gas, affiliate, aff, 0, 0, 0, 0)
	a.Op(evm.PUSH0, evm.PUSH0, evm.PUSH0, evm.PUSH0)
	a.Op(evm.DUP1 + 4) // value = aff
	pushAffiliate(a)   // to = affiliate
	a.Op(evm.GAS, evm.CALL, evm.POP)
	a.Op(evm.POP)
	a.Stop()
}

// emitMulticall appends the (address,bytes)[] batch-execution loop.
// Expects an empty stack; terminates with STOP.
func emitMulticall(a *evm.Assembler) {
	a.Op(evm.PUSH0) // i = 0
	a.Label("mcloop")
	// n := calldataload(4 + calldataload(4))
	a.PushInt(4).Op(evm.CALLDATALOAD).PushInt(4).Op(evm.ADD) // [i, base]
	a.Op(evm.CALLDATALOAD)                                   // [i, n]
	a.Op(evm.DUP1 + 1)                                       // [i, n, i]
	a.Op(evm.LT)                                             // [i, i<n]
	a.JumpIf("mcbody")
	a.Stop()

	a.Label("mcbody")                                        // [i]
	a.PushInt(4).Op(evm.CALLDATALOAD).PushInt(4).Op(evm.ADD) // [i, base]
	// elem := base + 32 + calldataload(base + 32 + 32*i)
	a.Op(evm.DUP1 + 1).PushInt(32).Op(evm.MUL) // [i, base, 32i]
	a.Op(evm.DUP1+1, evm.ADD)                  // [i, base, base+32i]
	a.PushInt(32).Op(evm.ADD)                  // [i, base, base+32i+32]
	a.Op(evm.CALLDATALOAD)                     // [i, base, rel]
	a.Op(evm.DUP1+1, evm.ADD)                  // [i, base, base+rel]
	a.PushInt(32).Op(evm.ADD)                  // [i, base, elem]
	a.Op(evm.DUP1, evm.CALLDATALOAD)           // [i, base, elem, target]
	a.Op(evm.SWAP1)                            // [i, base, target, elem]
	a.Op(evm.DUP1).PushInt(32).Op(evm.ADD)     // [i, base, target, elem, elem+32]
	a.Op(evm.CALLDATALOAD, evm.ADD)            // [i, base, target, bytesPtr]
	a.Op(evm.DUP1, evm.CALLDATALOAD)           // [i, base, target, bytesPtr, len]
	a.Op(evm.SWAP1).PushInt(32).Op(evm.ADD)    // [i, base, target, len, dataPtr]
	// calldatacopy(0, dataPtr, len)
	a.Op(evm.DUP1+1, evm.SWAP1, evm.PUSH0, evm.CALLDATACOPY) // [i, base, target, len]
	// call(gas, target, 0, 0, len, 0, 0)
	a.Op(evm.PUSH0, evm.PUSH0) // outSize outOff
	a.Op(evm.DUP1 + 2)         // inSize = len
	a.Op(evm.PUSH0, evm.PUSH0) // inOff, value
	a.Op(evm.DUP1 + 6)         // to = target
	a.Op(evm.GAS, evm.CALL, evm.POP)
	a.Op(evm.POP, evm.POP, evm.POP) // drop len, target, base → [i]
	a.PushInt(1).Op(evm.ADD)        // i++
	a.Jump("mcloop")
}

// Deploy assembles initcode that stores the spec's configuration and
// installs the runtime — pass it as the Data of a creation transaction.
func Deploy(spec Spec) ([]byte, error) {
	runtime, err := Runtime(spec)
	if err != nil {
		return nil, err
	}
	a := evm.NewAssembler()
	emitSpecStores(a, spec)
	return installRuntime(a, runtime)
}

// emitSpecStores emits the constructor SSTOREs seeding a spec's
// profit-sharing configuration; shared by Deploy and CloneDeploy.
func emitSpecStores(a *evm.Assembler, spec Spec) {
	store := func(slot *big.Int, val *big.Int) {
		a.Push(val).Push(slot).Op(evm.SSTORE)
	}
	store(slotOperator, new(big.Int).SetBytes(spec.Operator[:]))
	if !spec.Affiliate.IsZero() {
		store(slotAffiliate, new(big.Int).SetBytes(spec.Affiliate[:]))
	}
	store(slotRatio, big.NewInt(spec.OperatorPerMille))
	if !spec.Authorized.IsZero() {
		store(slotAuthorized, new(big.Int).SetBytes(spec.Authorized[:]))
	}
}

// MulticallData encodes calldata for the multicall entry from a list of
// (target, payload) pairs.
func MulticallData(calls []MulticallStep) ([]byte, error) {
	steps := make([]any, len(calls))
	for i, c := range calls {
		steps[i] = []any{c.Target, c.Payload}
	}
	argT := ethabi.SliceOf(ethabi.TupleOf(ethabi.AddressT, ethabi.BytesT))
	return ethabi.EncodeCall(MulticallSignature, []ethabi.Type{argT}, []any{steps})
}

// MulticallStep is one inner call of a multicall batch.
type MulticallStep struct {
	Target  ethtypes.Address
	Payload []byte
}

// ClaimData encodes calldata for a named ETH-theft function.
func ClaimData(signature string, affiliate ethtypes.Address) ([]byte, error) {
	return ethabi.EncodeCall(signature, []ethabi.Type{ethabi.AddressT}, []any{affiliate})
}
