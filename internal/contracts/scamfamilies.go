package contracts

import (
	"fmt"
	"math/big"

	"repro/internal/ethabi"
	"repro/internal/ethtypes"
	"repro/internal/evm"
	"repro/internal/evmstatic"
)

// This file holds the bytecode templates for the scam families beyond
// profit-sharing drainers — approval phishers, Forsage-style payout
// pyramids, and proxy forwarders — plus the benign look-alikes the
// static fingerprint engine must NOT flag: a payment router, an
// allowance helper whose spender comes from calldata, and an
// owner-gated airdrop. Each template is the minimal bytecode shape the
// corresponding fingerprint keys on (or, for the negatives, the shape
// that differs in exactly the leg the fingerprint tests).

// Entry-point signatures of the family templates.
const (
	// DrainSignature is the approval phisher's entry: the operator
	// relays harvested victim consent as (token, victim, amount).
	DrainSignature = "drain(address,address,uint256)"
	// JoinSignature is the pyramid's deposit entry.
	JoinSignature = "join()"
	// RouterPaySignature is the benign router's entry: forwards a plain
	// transfer(to, amount) to the given token.
	RouterPaySignature = "pay(address,address,uint256)"
	// ApproveForSignature is the benign allowance helper's entry:
	// forwards approve(spender, amount) with the spender from calldata.
	ApproveForSignature = "approveFor(address,address,uint256)"
	// DistributeSignature is the airdrop's owner-gated payout entry.
	DistributeSignature = "distribute()"
)

// ApprovalSinkSignatures are the allowance-consuming token entrypoints
// an approval phisher forwards into, in template order. The first is
// the default sink. Kept in sync with the static engine's sink set.
var ApprovalSinkSignatures = []string{
	"transferFrom(address,address,uint256)",
	"approve(address,uint256)",
	"permit(address,address,uint256)",
	"increaseAllowance(address,uint256)",
	"setApprovalForAll(address,bool)",
}

// payloadWord emits one 32-byte argument of a forwarded token call.
type payloadWord func(a *evm.Assembler)

// cdWord pushes calldataload(off) — a victim-controlled word.
func cdWord(off int64) payloadWord {
	return func(a *evm.Assembler) { a.PushInt(off).Op(evm.CALLDATALOAD) }
}

// addrWord pushes a hardcoded address constant.
func addrWord(addr ethtypes.Address) payloadWord {
	return func(a *evm.Assembler) { a.PushAddr(addr) }
}

// intWord pushes a small constant.
func intWord(v int64) payloadWord {
	return func(a *evm.Assembler) { a.PushInt(v) }
}

// phishLayout maps a sink signature to its payload words given the
// spec's hardcoded receiver. Main calldata is always (token@4,
// victim@36, amount@68).
func phishLayout(sink string, receiver ethtypes.Address) ([]payloadWord, bool) {
	switch sink {
	case "transferFrom(address,address,uint256)",
		"permit(address,address,uint256)":
		// (from=victim, to/spender=receiver, amount)
		return []payloadWord{cdWord(36), addrWord(receiver), cdWord(68)}, true
	case "approve(address,uint256)",
		"increaseAllowance(address,uint256)":
		// (spender=receiver, amount)
		return []payloadWord{addrWord(receiver), cdWord(68)}, true
	case "setApprovalForAll(address,bool)":
		// (operator=receiver, approved=true) — an all-constant payload;
		// only the call target carries taint, exercising the engine's
		// tainted-target leg.
		return []payloadWord{addrWord(receiver), intWord(1)}, true
	}
	return nil, false
}

// ApprovalPhisherSpec parameterizes an approval-phishing relay
// contract: the operator-run forwarder that spends allowances the
// phishing site harvested off-chain (paper §6.1).
type ApprovalPhisherSpec struct {
	// MainSignature overrides the dispatched entrypoint; it must take
	// (address token, address victim, uint256 amount). Empty selects
	// DrainSignature.
	MainSignature string
	// SinkSignature selects the forwarded token call; must be one of
	// ApprovalSinkSignatures. Empty selects transferFrom.
	SinkSignature string
	// Receiver is the hardcoded address granted the victim's balance or
	// allowance — the attacker-controlled spender constant the static
	// fingerprint keys on.
	Receiver ethtypes.Address
}

func (s ApprovalPhisherSpec) mainSignature() string {
	if s.MainSignature != "" {
		return s.MainSignature
	}
	return DrainSignature
}

func (s ApprovalPhisherSpec) sinkSignature() string {
	if s.SinkSignature != "" {
		return s.SinkSignature
	}
	return ApprovalSinkSignatures[0]
}

// Validate rejects specs that would assemble a broken contract.
func (s ApprovalPhisherSpec) Validate() error {
	if s.Receiver.IsZero() {
		return fmt.Errorf("contracts: approval phisher needs a receiver")
	}
	if _, ok := phishLayout(s.sinkSignature(), s.Receiver); !ok {
		return fmt.Errorf("contracts: unknown approval sink %q", s.sinkSignature())
	}
	return nil
}

// ApprovalPhisherRuntime assembles the phisher's runtime: one
// dispatched entry that rebuilds the sink payload in memory — sink
// selector word, then ABI arguments — and calls the victim-supplied
// token with it.
func ApprovalPhisherRuntime(spec ApprovalPhisherSpec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	words, _ := phishLayout(spec.sinkSignature(), spec.Receiver)
	sink := ethabi.Selector(spec.sinkSignature())

	a := evm.NewAssembler()
	emitSingleDispatch(a, spec.mainSignature())
	emitForwardCall(a, sink, words, cdWord(4)) // target = token from calldata
	a.Stop()
	return a.Assemble()
}

// ApprovalPhisherDeploy assembles initcode installing the runtime; the
// phisher keeps no storage configuration (its receiver is baked into
// the code).
func ApprovalPhisherDeploy(spec ApprovalPhisherSpec) ([]byte, error) {
	runtime, err := ApprovalPhisherRuntime(spec)
	if err != nil {
		return nil, err
	}
	return installRuntime(evm.NewAssembler(), runtime)
}

// BenignRouterRuntime assembles the payment-router negative: it
// forwards calldata into transfer(to, amount) on a victim-supplied
// token. Structurally a twin of the phisher, but transfer consumes no
// allowance, so it must stay outside the sink set.
func BenignRouterRuntime() ([]byte, error) {
	a := evm.NewAssembler()
	emitSingleDispatch(a, RouterPaySignature)
	emitForwardCall(a, ethabi.Selector("transfer(address,uint256)"),
		[]payloadWord{cdWord(36), cdWord(68)}, cdWord(4))
	a.Stop()
	return a.Assemble()
}

// BenignRouterDeploy assembles initcode installing the router runtime.
func BenignRouterDeploy() ([]byte, error) {
	runtime, err := BenignRouterRuntime()
	if err != nil {
		return nil, err
	}
	return installRuntime(evm.NewAssembler(), runtime)
}

// AllowanceHelperRuntime assembles the allowance-helper negative: it
// forwards approve(spender, amount) — a genuine sink selector — but the
// spender arrives in calldata, so the caller controls it and the
// constant-spender leg of the fingerprint must fail.
func AllowanceHelperRuntime() ([]byte, error) {
	a := evm.NewAssembler()
	emitSingleDispatch(a, ApproveForSignature)
	emitForwardCall(a, ethabi.Selector("approve(address,uint256)"),
		[]payloadWord{cdWord(36), cdWord(68)}, cdWord(4))
	a.Stop()
	return a.Assemble()
}

// AllowanceHelperDeploy assembles initcode installing the helper
// runtime.
func AllowanceHelperDeploy() ([]byte, error) {
	runtime, err := AllowanceHelperRuntime()
	if err != nil {
		return nil, err
	}
	return installRuntime(evm.NewAssembler(), runtime)
}

// slotMatrixBase is the first storage slot of a payout table; entry i
// lives at slotMatrixBase+i. Shared by the pyramid's level matrix and
// the airdrop's recipient list.
const slotMatrixBase = 10

// PyramidLevel is one row of a pyramid's payout matrix.
type PyramidLevel struct {
	// Payee receives Amount wei on every join — an upline slot in the
	// Forsage matrix.
	Payee  ethtypes.Address
	Amount *big.Int
}

// PyramidSpec parameterizes a Forsage-style payout pyramid: join()
// fans the deposit out over a fixed payee matrix with level-indexed
// amounts.
type PyramidSpec struct {
	// MainSignature overrides the deposit entry (no arguments); empty
	// selects JoinSignature.
	MainSignature string
	// Levels is the payout matrix; payees land in storage slots
	// slotMatrixBase+i at deployment.
	Levels []PyramidLevel
}

func (s PyramidSpec) mainSignature() string {
	if s.MainSignature != "" {
		return s.MainSignature
	}
	return JoinSignature
}

// Validate rejects specs that would assemble a broken contract.
func (s PyramidSpec) Validate() error {
	if len(s.Levels) == 0 {
		return fmt.Errorf("contracts: pyramid needs at least one level")
	}
	for i, lv := range s.Levels {
		if lv.Payee.IsZero() {
			return fmt.Errorf("contracts: pyramid level %d payee unset", i)
		}
		if lv.Amount == nil || lv.Amount.Sign() <= 0 {
			return fmt.Errorf("contracts: pyramid level %d amount must be positive", i)
		}
	}
	return nil
}

// Total sums the level amounts — the deposit a joiner must send for
// the matrix to pay out of its own value.
func (s PyramidSpec) Total() *big.Int {
	total := new(big.Int)
	for _, lv := range s.Levels {
		if lv.Amount != nil {
			total.Add(total, lv.Amount)
		}
	}
	return total
}

// PyramidRuntime assembles the pyramid's runtime: join() pays each
// level's constant amount to the payee stored in its matrix slot.
func PyramidRuntime(spec PyramidSpec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	a := evm.NewAssembler()
	emitSingleDispatch(a, spec.mainSignature())
	for i, lv := range spec.Levels {
		emitSlotPayout(a, slotMatrixBase+int64(i), lv.Amount)
	}
	a.Stop()
	return a.Assemble()
}

// PyramidDeploy assembles initcode that stores the payee matrix and
// installs the runtime.
func PyramidDeploy(spec PyramidSpec) ([]byte, error) {
	runtime, err := PyramidRuntime(spec)
	if err != nil {
		return nil, err
	}
	a := evm.NewAssembler()
	for i, lv := range spec.Levels {
		a.Push(new(big.Int).SetBytes(lv.Payee[:]))
		a.PushInt(slotMatrixBase + int64(i)).Op(evm.SSTORE)
	}
	return installRuntime(a, runtime)
}

// AirdropSpec parameterizes the airdrop negative: an owner-gated
// distribution of one fixed amount to a stored recipient list. It
// fails the pyramid fingerprint twice over — no arbitrary caller can
// reach the payout (owner gate) and the schedule has a single distinct
// amount.
type AirdropSpec struct {
	// Owner is the only caller allowed to trigger distribution; stored
	// in slotAuthorized like the drainer templates' executor.
	Owner ethtypes.Address
	// Recipients each receive Amount wei; stored at slotMatrixBase+i.
	Recipients []ethtypes.Address
	Amount     *big.Int
}

// Validate rejects specs that would assemble a broken contract.
func (s AirdropSpec) Validate() error {
	if s.Owner.IsZero() {
		return fmt.Errorf("contracts: airdrop needs an owner")
	}
	if len(s.Recipients) == 0 {
		return fmt.Errorf("contracts: airdrop needs recipients")
	}
	for i, r := range s.Recipients {
		if r.IsZero() {
			return fmt.Errorf("contracts: airdrop recipient %d unset", i)
		}
	}
	if s.Amount == nil || s.Amount.Sign() <= 0 {
		return fmt.Errorf("contracts: airdrop amount must be positive")
	}
	return nil
}

// AirdropRuntime assembles the airdrop's runtime: distribute() reverts
// for anyone but the owner, then pays each stored recipient the same
// constant amount.
func AirdropRuntime(spec AirdropSpec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	a := evm.NewAssembler()
	emitSingleDispatch(a, DistributeSignature)
	a.Op(evm.CALLER).Push(slotAuthorized).Op(evm.SLOAD, evm.EQ)
	a.JumpIf("ok")
	a.Revert()
	a.Label("ok")
	for i := range spec.Recipients {
		emitSlotPayout(a, slotMatrixBase+int64(i), spec.Amount)
	}
	a.Stop()
	return a.Assemble()
}

// AirdropDeploy assembles initcode that stores the owner and recipient
// list and installs the runtime.
func AirdropDeploy(spec AirdropSpec) ([]byte, error) {
	runtime, err := AirdropRuntime(spec)
	if err != nil {
		return nil, err
	}
	a := evm.NewAssembler()
	a.Push(new(big.Int).SetBytes(spec.Owner[:]))
	a.Push(slotAuthorized).Op(evm.SSTORE)
	for i, r := range spec.Recipients {
		a.Push(new(big.Int).SetBytes(r[:]))
		a.PushInt(slotMatrixBase + int64(i)).Op(evm.SSTORE)
	}
	return installRuntime(a, runtime)
}

// MinimalProxyRuntime is the canonical 45-byte EIP-1167 forwarder for
// impl.
func MinimalProxyRuntime(impl ethtypes.Address) []byte {
	return evmstatic.EIP1167Runtime(impl)
}

// MinimalProxyDeploy assembles initcode installing a bare EIP-1167
// clone of impl.
func MinimalProxyDeploy(impl ethtypes.Address) ([]byte, error) {
	return installRuntime(evm.NewAssembler(), MinimalProxyRuntime(impl))
}

// CloneDeploy assembles the clone-factory idiom: initcode that seeds
// the clone's storage with the spec's profit-sharing configuration and
// installs the EIP-1167 runtime pointing at a shared implementation.
// DELEGATECALL runs the implementation under the clone's storage, so
// each clone carries its own operator/affiliate/ratio while all clones
// share one code deployment.
func CloneDeploy(impl ethtypes.Address, spec Spec) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	a := evm.NewAssembler()
	emitSpecStores(a, spec)
	return installRuntime(a, MinimalProxyRuntime(impl))
}

// slotProxyImpl is the storage slot a slot-proxy reads its
// implementation from — a small constant slot standing in for
// EIP-1967's hashed slot, which the toy analyzer resolves the same
// way.
var slotProxyImpl = big.NewInt(7)

// SlotProxyRuntime assembles an upgradeable-style proxy: forward the
// full calldata via DELEGATECALL to the address stored in
// slotProxyImpl.
func SlotProxyRuntime() ([]byte, error) {
	a := evm.NewAssembler()
	// calldatacopy(0, 0, calldatasize)
	a.Op(evm.CALLDATASIZE, evm.PUSH0, evm.PUSH0, evm.CALLDATACOPY)
	// delegatecall(gas, sload(slotProxyImpl), 0, calldatasize, 0, 0)
	a.Op(evm.PUSH0, evm.PUSH0)        // outSize outOff
	a.Op(evm.CALLDATASIZE, evm.PUSH0) // inSize inOff
	a.Push(slotProxyImpl).Op(evm.SLOAD)
	a.Op(evm.GAS, evm.DELEGATECALL, evm.POP)
	a.Stop()
	return a.Assemble()
}

// SlotProxyDeploy assembles initcode that stores impl in slotProxyImpl
// and installs the slot-proxy runtime.
func SlotProxyDeploy(impl ethtypes.Address) ([]byte, error) {
	runtime, err := SlotProxyRuntime()
	if err != nil {
		return nil, err
	}
	a := evm.NewAssembler()
	a.Push(new(big.Int).SetBytes(impl[:]))
	a.Push(slotProxyImpl).Op(evm.SSTORE)
	return installRuntime(a, runtime)
}

// emitSingleDispatch emits the dispatcher for a one-function contract:
// short calldata and unknown selectors fall through to a plain STOP
// fallback; the named selector lands at "main" with the selector copy
// already dropped.
func emitSingleDispatch(a *evm.Assembler, sig string) {
	a.PushInt(4).Op(evm.CALLDATASIZE, evm.LT)
	a.JumpIf("fallback")
	a.Op(evm.PUSH0, evm.CALLDATALOAD).PushInt(224).Op(evm.SHR)
	sel := ethabi.Selector(sig)
	a.Op(evm.DUP1).PushBytes(sel[:]).Op(evm.EQ).JumpIf("main")
	a.Label("fallback")
	a.Stop()
	a.Label("main")
	a.Op(evm.POP)
}

// emitForwardCall builds an ABI call payload in memory — the 4-byte
// sink selector at offset 0, each argument word at 4+32i — and emits
// call(gas, target, 0, 0, payload, 0, 0).
func emitForwardCall(a *evm.Assembler, sink [4]byte, words []payloadWord, target payloadWord) {
	// mstore(0, sink << 224)
	a.PushBytes(sink[:]).PushInt(224).Op(evm.SHL)
	a.Op(evm.PUSH0, evm.MSTORE)
	for i, w := range words {
		w(a)
		a.PushInt(int64(4 + 32*i)).Op(evm.MSTORE)
	}
	inSize := int64(4 + 32*len(words))
	a.Op(evm.PUSH0, evm.PUSH0) // outSize outOff
	a.PushInt(inSize)          // inSize
	a.Op(evm.PUSH0, evm.PUSH0) // inOff value
	target(a)                  // to
	a.Op(evm.GAS, evm.CALL, evm.POP)
}

// emitSlotPayout emits call(gas, sload(slot), amount, 0, 0, 0, 0) and
// drops the status — one leg of a stored payout table.
func emitSlotPayout(a *evm.Assembler, slot int64, amount *big.Int) {
	a.Op(evm.PUSH0, evm.PUSH0, evm.PUSH0, evm.PUSH0) // outSize outOff inSize inOff
	a.Push(amount)                                   // value
	a.PushInt(slot).Op(evm.SLOAD)                    // to
	a.Op(evm.GAS, evm.CALL, evm.POP)
}

// installRuntime finishes initcode: copy the runtime into memory and
// return it, with any constructor stores already emitted on a.
func installRuntime(a *evm.Assembler, runtime []byte) ([]byte, error) {
	a.PushInt(int64(len(runtime)))
	a.PushLabel("rt")
	a.PushInt(0)
	a.Op(evm.CODECOPY)
	a.PushInt(int64(len(runtime))).PushInt(0).Op(evm.RETURN)
	a.Mark("rt")
	a.Op(runtime...)
	return a.Assemble()
}
