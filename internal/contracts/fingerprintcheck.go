package contracts

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/ethtypes"
	"repro/internal/evmstatic"
)

// Distinctive probe arguments for fingerprint probing. Any address the
// probed contract forwards that matches none of these (nor the caller
// nor the contract itself) cannot have come from our calldata — it is
// a constant embedded in the code.
var (
	// ProbeToken plays the victim-approved token contract.
	ProbeToken = ethtypes.Addr("0x000000000000000000000000000000000000c0da")
	// ProbeVictim plays the phished owner whose allowance is spent.
	ProbeVictim = ethtypes.Addr("0x000000000000000000000000000000000000f1c7")
	// probeAmount is the forwarded token amount.
	probeAmount = big.NewInt(1_234_567)
)

// ProbeFamilies gathers dynamic fingerprint-family evidence for
// runtime bytecode: it probes the fallback and every dispatched
// selector with (token, victim, amount) calldata and attached value,
// then inspects the recorded execution. The result uses the same
// sorted labels as evmstatic.FamilyNames, making it the dynamic half
// of the static/dynamic fingerprint agreement check.
//
// Evidence per family:
//   - approval-phishing: a nested call's payload begins with an
//     allowance-sink selector and its spender word is a nonzero
//     address matching none of the probe-supplied addresses.
//   - pyramid-payout: one probe produced at least three value-bearing
//     calls over at least two distinct amounts.
//   - proxy: the code is an EIP-1167 minimal proxy, or executing it
//     asked the host for another contract's code (DELEGATECALL).
func ProbeFamilies(code []byte, self ethtypes.Address, read StorageReader) []string {
	fams := make(map[string]bool)
	if _, ok := evmstatic.ParseEIP1167(code); ok {
		fams[string(evmstatic.FamilyProxy)] = true
	}

	probes := [][]byte{nil} // fallback first
	for _, sel := range ExtractSelectors(code) {
		input := make([]byte, 4+3*32)
		copy(input[:4], sel[:])
		copy(input[16:36], ProbeToken[:])
		copy(input[48:68], ProbeVictim[:])
		probeAmount.FillBytes(input[68:100])
		probes = append(probes, input)
	}
	for _, input := range probes {
		ok, host := probeTrace(code, self, read, input, probeValue)
		if len(host.codeReads) > 0 {
			fams[string(evmstatic.FamilyProxy)] = true
		}
		if !ok {
			continue
		}
		if probeApprovalForward(self, host.calls) {
			fams[string(evmstatic.FamilyApprovalPhish)] = true
		}
		if probePyramid(host.calls) {
			fams[string(evmstatic.FamilyPyramid)] = true
		}
	}

	out := make([]string, 0, len(fams))
	for f := range fams {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// probeApprovalForward reports whether some recorded call forwarded an
// allowance-consuming payload whose spender is an embedded constant.
func probeApprovalForward(self ethtypes.Address, calls []probeCall) bool {
	for _, c := range calls {
		if len(c.input) < 4 {
			continue
		}
		var sel [4]byte
		copy(sel[:], c.input[:4])
		argPos, ok := evmstatic.ApprovalSinkSpenderArg(sel)
		if !ok {
			continue
		}
		off := 4 + 32*argPos
		if len(c.input) < off+32 {
			continue
		}
		word := new(big.Int).SetBytes(c.input[off : off+32])
		if word.Sign() == 0 || word.BitLen() > 160 {
			continue
		}
		spender := ethtypes.BytesToAddress(word.Bytes())
		if spender == ProbeToken || spender == ProbeVictim ||
			spender == probeCaller || spender == self {
			continue
		}
		return true
	}
	return false
}

// probePyramid reports the Forsage payout shape in one probe trace:
// three or more value-bearing calls over two or more distinct amounts.
// Profit-splitting drainers make exactly two and stay negative.
func probePyramid(calls []probeCall) bool {
	legs := 0
	amounts := make(map[string]bool)
	for _, c := range calls {
		if c.value.IsZero() {
			continue
		}
		legs++
		amounts[c.value.Big().Text(16)] = true
	}
	return legs >= 3 && len(amounts) >= 2
}

// CrossValidateFingerprints compares the static engine's fingerprint
// families with dynamically probed evidence over the same bytecode,
// describing every disagreement. The two sides key on the same sink
// set but by entirely different means — abstract interpretation vs.
// sandboxed execution — so agreement is strong evidence both are
// right.
func CrossValidateFingerprints(code []byte, self ethtypes.Address, read StorageReader, st *evmstatic.StaticAnalysis) []string {
	dyn := ProbeFamilies(code, self, read)
	stat := evmstatic.FamilyNames(st.Fingerprints)

	dynSet := make(map[string]bool, len(dyn))
	for _, f := range dyn {
		dynSet[f] = true
	}
	statSet := make(map[string]bool, len(stat))
	for _, f := range stat {
		statSet[f] = true
	}

	var warns []string
	for _, f := range stat {
		if !dynSet[f] {
			warns = append(warns, fmt.Sprintf("static %s fingerprint has no dynamic probe evidence", f))
		}
	}
	for _, f := range dyn {
		if !statSet[f] {
			warns = append(warns, fmt.Sprintf("dynamic probe evidence for %s the static pass missed", f))
		}
	}
	return warns
}
