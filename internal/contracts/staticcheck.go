package contracts

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/ethtypes"
	"repro/internal/evmstatic"
)

// StaticStorage adapts a StorageReader snapshot of one contract into
// the constant-storage environment the static analyzer consumes. Chain
// state is total — unwritten slots are zero — so every lookup resolves.
func StaticStorage(addr ethtypes.Address, read StorageReader) evmstatic.Storage {
	return func(slot *big.Int) (*big.Int, bool) {
		if slot.BitLen() > 256 {
			return new(big.Int), true
		}
		if read == nil {
			return new(big.Int), true
		}
		var key ethtypes.Hash
		slot.FillBytes(key[:])
		v := read(addr, key)
		return new(big.Int).SetBytes(v[:]), true
	}
}

// AnalyzeStatic runs the static analyzer over runtime bytecode with the
// contract's storage snapshot as the constant environment.
func AnalyzeStatic(code []byte, self ethtypes.Address, read StorageReader) *evmstatic.StaticAnalysis {
	return evmstatic.AnalyzeRuntime(code, StaticStorage(self, read))
}

// DecompileChecked runs the dynamic decompiler and the static analyzer
// over the same bytecode and cross-validates their findings; any
// disagreement lands in Analysis.Warnings.
func DecompileChecked(code []byte, self ethtypes.Address, read StorageReader) Analysis {
	an := Decompile(code, self, read)
	st := AnalyzeStatic(code, self, read)
	an.Warnings = CrossValidate(&an, st)
	an.Warnings = append(an.Warnings, CrossValidateFingerprints(code, self, read, st)...)
	return an
}

// CrossValidate compares a dynamic analysis with a static one and
// describes every disagreement. The two passes recover the same facts
// by entirely different means — probing execution vs. abstract
// interpretation — so an empty result is strong evidence both are
// right, and a warning flags a contract whose split path the probe
// failed to exercise (or a hole in the static lattice).
func CrossValidate(dyn *Analysis, st *evmstatic.StaticAnalysis) []string {
	var warns []string
	warnf := func(format string, args ...any) {
		warns = append(warns, fmt.Sprintf(format, args...))
	}

	// Selector sets. The dynamic side scans PUSH4/EQ pairs; the static
	// side resolves the dispatcher's comparison chain, so it also sees
	// selectors pushed by wider-than-PUSH4 instructions.
	dynSels := make(map[[4]byte]bool, len(dyn.Selectors))
	for _, s := range dyn.Selectors {
		dynSels[s.Selector] = true
	}
	stSels := make(map[[4]byte]bool, len(st.Functions))
	stPayable := make(map[[4]byte]bool, len(st.Functions))
	for _, fn := range st.Functions {
		stSels[fn.Selector] = true
		stPayable[fn.Selector] = fn.Payable
	}
	for _, s := range sortedSels(dynSels) {
		if !stSels[s] {
			warnf("selector %#x found syntactically but not dispatched in the CFG", s)
		}
	}
	for _, s := range sortedSels(stSels) {
		if !dynSels[s] {
			warnf("selector %#x dispatched in the CFG but missed by the syntactic scan", s)
		}
	}

	// Payability per shared selector.
	for _, info := range dyn.Selectors {
		stP, ok := stPayable[info.Selector]
		if !ok {
			continue
		}
		if stP != info.Payable {
			warnf("selector %#x payability: dynamic=%v static=%v", info.Selector, info.Payable, stP)
		}
	}
	if st.PayableFallback != dyn.PayableFallback {
		warnf("payable fallback: dynamic=%v static=%v", dyn.PayableFallback, st.PayableFallback)
	}

	// Split presence.
	dynSplit := dyn.OperatorPerMille > 0
	switch {
	case dynSplit && !st.HasSplit:
		warnf("dynamic probe observed a %d‰ split the static pass did not find", dyn.OperatorPerMille)
		return warns
	case !dynSplit && st.HasSplit:
		warnf("static pass found a profit split the dynamic probe never exercised")
		return warns
	case !dynSplit:
		return warns
	}

	// Split parameters. The dynamic prober names the smaller share the
	// operator (§4.3); translate the static view into the same frame
	// before comparing.
	opPM, op, opKnown, opCD := st.OperatorPerMille, st.Operator, st.OperatorKnown, false
	aff, affKnown, affCD := st.Affiliate, st.AffiliateKnown, st.AffiliateFromCalldata
	if st.RatioKnown && opPM > 500 {
		// The share-call recipient got the larger cut, so the prober
		// will have called it the affiliate.
		opPM = 1000 - opPM
		op, aff = aff, op
		opKnown, affKnown = affKnown, opKnown
		opCD, affCD = affCD, false
	}
	if st.RatioKnown && opPM != dyn.OperatorPerMille {
		warnf("operator share: dynamic=%d‰ static=%d‰", dyn.OperatorPerMille, opPM)
	}
	switch {
	case opKnown && op != dyn.Operator:
		warnf("operator address: dynamic=%s static=%s", dyn.Operator, op)
	case opCD && dyn.Operator != ProbeAffiliate:
		warnf("static pass says the operator share goes to a calldata address, but the probe's %s was not paid (got %s)",
			ProbeAffiliate, dyn.Operator)
	}
	switch {
	case affKnown && aff != dyn.Affiliate:
		warnf("affiliate address: dynamic=%s static=%s", dyn.Affiliate, aff)
	case affCD && dyn.Affiliate != ProbeAffiliate:
		warnf("static pass says the affiliate comes from calldata, but the probe's affiliate %s was not paid (got %s)",
			ProbeAffiliate, dyn.Affiliate)
	}
	return warns
}

// sortedSels orders a selector set for deterministic warning output.
func sortedSels(set map[[4]byte]bool) [][4]byte {
	out := make([][4]byte, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return string(out[i][:]) < string(out[j][:]) })
	return out
}
