package contracts

import (
	"strings"
	"testing"

	"repro/internal/evm"
)

func TestDisassembleRoundTripShape(t *testing.T) {
	runtime, err := Runtime(Spec{
		Style: StyleClaim, Operator: operator,
		OperatorPerMille: 200, Authorized: authorized,
	})
	if err != nil {
		t.Fatal(err)
	}
	ins := Disassemble(runtime)
	if len(ins) == 0 {
		t.Fatal("empty disassembly")
	}
	// PCs are strictly increasing and instruction boundaries respect
	// PUSH operand widths.
	for i := 1; i < len(ins); i++ {
		prev := ins[i-1]
		want := prev.PC + 1 + len(prev.Operand)
		if ins[i].PC != want {
			t.Fatalf("pc %d follows %d (operand %d bytes), want %d",
				ins[i].PC, prev.PC, len(prev.Operand), want)
		}
	}
	// The dispatcher references both selectors via PUSH4.
	var push4 int
	for _, in := range ins {
		if in.Mnemonic == "PUSH4" {
			push4++
		}
	}
	if push4 < 2 {
		t.Errorf("found %d PUSH4 instructions, want ≥ 2", push4)
	}
}

func TestDisassembleTruncatedPush(t *testing.T) {
	// PUSH4 with only 2 operand bytes available must not panic.
	code := []byte{evm.PUSH1 + 3, 0xaa, 0xbb}
	ins := Disassemble(code)
	if len(ins) != 1 || len(ins[0].Operand) != 2 {
		t.Errorf("truncated push decoded as %+v", ins)
	}
}

func TestDisassembleUnknownOpcode(t *testing.T) {
	ins := Disassemble([]byte{0xfe, evm.STOP})
	if len(ins) != 2 || !strings.Contains(ins[0].Mnemonic, "INVALID") {
		t.Errorf("unknown opcode decoded as %+v", ins)
	}
}

func TestFormatDisassemblyAnnotatesSelectors(t *testing.T) {
	runtime, err := Runtime(Spec{
		Style: StyleClaim, Operator: operator,
		OperatorPerMille: 200, Authorized: authorized,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatDisassembly(runtime)
	if !strings.Contains(out, "// Claim(address)") {
		t.Error("Claim selector not annotated")
	}
	if !strings.Contains(out, "// "+MulticallSignature) {
		t.Error("multicall selector not annotated")
	}
	if !strings.Contains(out, "JUMPDEST") || !strings.Contains(out, "CALLVALUE") {
		t.Error("listing lacks core opcodes")
	}
}
