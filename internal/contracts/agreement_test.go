package contracts

import (
	"fmt"
	"testing"

	"repro/internal/ethabi"
	"repro/internal/evmstatic"
)

// TestStaticDynamicAgreement is the acceptance gate for the static
// analyzer: over every template style × every paper ratio, the static
// pass — fed only the creation bytecode, executing nothing — must
// recover the same selectors, operator per-mille, and payout addresses
// as the dynamic prober, with CrossValidate finding no disagreement.
func TestStaticDynamicAgreement(t *testing.T) {
	styles := []Style{StyleClaim, StyleFallback, StyleNetworkMerge}
	for _, style := range styles {
		for _, pm := range evmstatic.PaperRatiosPM {
			spec := Spec{
				Style:            style,
				Operator:         operator,
				Affiliate:        affiliate,
				OperatorPerMille: pm,
				Authorized:       authorized,
			}
			t.Run(fmt.Sprintf("%s/%d", style, pm), func(t *testing.T) {
				checkAgreement(t, spec)
			})
		}
	}
	// Every alternative claim signature at one representative ratio.
	for _, sig := range ClaimSignatures[1:] {
		spec := Spec{
			Style:            StyleClaim,
			MainSignature:    sig,
			Operator:         operator,
			Affiliate:        affiliate,
			OperatorPerMille: 200,
			Authorized:       authorized,
		}
		t.Run("sig/"+sig, func(t *testing.T) { checkAgreement(t, spec) })
	}
}

func checkAgreement(t *testing.T, spec Spec) {
	t.Helper()
	c := newChain(t)
	addr := deploySpec(t, c, spec)
	code := c.CodeAt(addr)
	read := chainReader(c)

	// Dynamic pass: deploys nothing further but executes the probes.
	dyn := Decompile(code, addr, read)

	// Static pass: creation bytecode only, no chain, no execution.
	initcode, err := Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := evmstatic.AnalyzeDeploy(initcode)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range CrossValidate(&dyn, st) {
		t.Errorf("cross-validation: %s", w)
	}

	// Beyond mere agreement, both must be right about the spec.
	if !st.RatioKnown || st.OperatorPerMille != spec.OperatorPerMille {
		t.Errorf("static ratio = %d (known=%v), want %d", st.OperatorPerMille, st.RatioKnown, spec.OperatorPerMille)
	}
	if dyn.OperatorPerMille != spec.OperatorPerMille {
		t.Errorf("dynamic ratio = %d, want %d", dyn.OperatorPerMille, spec.OperatorPerMille)
	}
	if !st.RatioInPaperSet {
		t.Errorf("ratio %d not flagged as a paper ratio", st.OperatorPerMille)
	}
	if !st.OperatorKnown || st.Operator != spec.Operator {
		t.Errorf("static operator = %s (known=%v), want %s", st.Operator, st.OperatorKnown, spec.Operator)
	}
	if spec.Style == StyleFallback {
		if !st.AffiliateKnown || st.Affiliate != spec.Affiliate {
			t.Errorf("static affiliate = %s (known=%v), want stored %s", st.Affiliate, st.AffiliateKnown, spec.Affiliate)
		}
		if !st.SplitInFallback {
			t.Errorf("split not attributed to the fallback")
		}
	} else {
		if !st.AffiliateFromCalldata {
			t.Errorf("calldata affiliate not recognized")
		}
		want := ethabi.Selector(spec.mainSignature())
		if st.SplitSelector != want {
			t.Errorf("split selector = %x, want %x", st.SplitSelector, want)
		}
	}

	// Selector sets match exactly.
	stSels := make(map[[4]byte]bool)
	for _, fn := range st.Functions {
		stSels[fn.Selector] = true
	}
	if len(stSels) != len(dyn.Selectors) {
		t.Errorf("static found %d selectors, dynamic %d", len(stSels), len(dyn.Selectors))
	}
	for _, s := range dyn.Selectors {
		if !stSels[s.Selector] {
			t.Errorf("dynamic selector %x missing from static dispatch", s.Selector)
		}
	}

	// The checked decompile path stays warning-free on templates.
	checked := DecompileChecked(code, addr, read)
	for _, w := range checked.Warnings {
		t.Errorf("DecompileChecked warning: %s", w)
	}
}
