// Package rpc exposes the simulated chain over JSON-RPC 2.0 / HTTP and
// provides a client that satisfies core.ChainSource, so the dataset
// pipeline runs against a remote node exactly as the paper's collector
// ran against an archive node. The method set mirrors the subset of
// the Ethereum/trace API the collector needs, under the "repro_"
// namespace where the standard API has no equivalent (indexed account
// history, fund-flow receipts, label queries).
package rpc

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/labels"
)

// request and response are JSON-RPC 2.0 envelopes.
type request struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      int64           `json:"id"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params"`
}

type response struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      int64           `json:"id"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
}

type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

func (e *rpcError) Error() string { return fmt.Sprintf("rpc error %d: %s", e.Code, e.Message) }

// JSON-RPC error codes.
const (
	codeParse          = -32700
	codeInvalidRequest = -32600
	codeMethodNotFound = -32601
	codeInvalidParams  = -32602
	codeInternal       = -32603
	codeOverloaded     = -32005
	codeTimeout        = -32008
)

// Exported error codes for the server's overload-control contract, so
// callers can distinguish "back off and retry" from a hard failure.
const (
	// CodeOverloaded is returned (with HTTP 503 + Retry-After) when the
	// admission gate sheds a request instead of queueing it.
	CodeOverloaded = codeOverloaded
	// CodeTimeout is returned when the per-request deadline expires
	// before (or while) the request is dispatched.
	CodeTimeout = codeTimeout
)

// Wire DTOs.

type txJSON struct {
	Hash     string `json:"hash"`
	Nonce    uint64 `json:"nonce"`
	From     string `json:"from"`
	To       string `json:"to,omitempty"`
	Value    string `json:"value"`
	Data     string `json:"input"`
	GasLimit uint64 `json:"gas"`
}

type transferJSON struct {
	AssetKind string `json:"assetKind"`
	Token     string `json:"token,omitempty"`
	TokenID   uint64 `json:"tokenId,omitempty"`
	From      string `json:"from"`
	To        string `json:"to"`
	Amount    string `json:"amount"`
	Depth     int    `json:"depth"`
}

type approvalJSON struct {
	Token   string `json:"token"`
	Kind    string `json:"kind"`
	Owner   string `json:"owner"`
	Spender string `json:"spender"`
	Amount  string `json:"amount"`
	All     bool   `json:"all,omitempty"`
}

type logJSON struct {
	Address string   `json:"address"`
	Topics  []string `json:"topics"`
	Data    string   `json:"data"`
}

type receiptJSON struct {
	TxHash          string         `json:"transactionHash"`
	BlockNumber     uint64         `json:"blockNumber"`
	Timestamp       int64          `json:"timestamp"`
	Status          bool           `json:"status"`
	GasUsed         uint64         `json:"gasUsed"`
	ContractAddress string         `json:"contractAddress,omitempty"`
	Transfers       []transferJSON `json:"transfers"`
	Approvals       []approvalJSON `json:"approvals,omitempty"`
	Logs            []logJSON      `json:"logs,omitempty"`
	Err             string         `json:"error,omitempty"`
}

type blockJSON struct {
	Number    uint64   `json:"number"`
	Timestamp int64    `json:"timestamp"`
	Hash      string   `json:"hash"`
	Parent    string   `json:"parentHash"`
	TxHashes  []string `json:"transactions"`
}

type logEntryJSON struct {
	Log         logJSON `json:"log"`
	TxHash      string  `json:"transactionHash"`
	BlockNumber uint64  `json:"blockNumber"`
	Timestamp   int64   `json:"timestamp"`
}

// screenResultJSON is one daas_screen/daas_screenBatch verdict. The
// record fields are omitted for clean addresses, so a mostly-clean
// batch response stays compact. SnapshotAge is the whole seconds since
// the serving snapshot was last confirmed fresh (installed, or
// re-confirmed by a successful radar step); it is 0 — and omitted —
// while the upstream is healthy, so degraded-mode answers are
// self-describing without widening the common case.
type screenResultJSON struct {
	Address       string `json:"address"`
	Listed        bool   `json:"listed"`
	Kind          string `json:"kind,omitempty"`
	Reason        string `json:"reason,omitempty"`
	Family        string `json:"family,omitempty"`
	Tainted       bool   `json:"tainted,omitempty"`
	StaticFlagged bool   `json:"staticFlagged,omitempty"`
	SnapshotAge   uint64 `json:"snapshotAge,omitempty"`
}

type labelJSON struct {
	Address  string `json:"address"`
	Source   string `json:"source"`
	Category string `json:"category"`
	Name     string `json:"name"`
}

// Conversions.

func toTxJSON(tx *chain.Transaction) txJSON {
	out := txJSON{
		Hash:     tx.Hash().Hex(),
		Nonce:    tx.Nonce,
		From:     tx.From.Hex(),
		Value:    tx.Value.String(),
		Data:     "0x" + hex.EncodeToString(tx.Data),
		GasLimit: tx.GasLimit,
	}
	if tx.To != nil {
		out.To = tx.To.Hex()
	}
	return out
}

func fromTxJSON(in txJSON) (*chain.Transaction, error) {
	from, err := ethtypes.HexToAddress(in.From)
	if err != nil {
		return nil, err
	}
	tx := &chain.Transaction{
		Nonce:    in.Nonce,
		From:     from,
		GasLimit: in.GasLimit,
	}
	if in.To != "" {
		to, err := ethtypes.HexToAddress(in.To)
		if err != nil {
			return nil, err
		}
		tx.To = &to
	}
	if tx.Value, err = parseWei(in.Value); err != nil {
		return nil, err
	}
	raw := strings.TrimPrefix(in.Data, "0x")
	if tx.Data, err = hex.DecodeString(raw); err != nil {
		return nil, fmt.Errorf("rpc: bad input data: %w", err)
	}
	return tx, nil
}

func assetKindFromString(s string) (chain.AssetKind, error) {
	switch s {
	case "ETH":
		return chain.AssetETH, nil
	case "ERC20":
		return chain.AssetERC20, nil
	case "ERC721":
		return chain.AssetERC721, nil
	default:
		return 0, fmt.Errorf("rpc: unknown asset kind %q", s)
	}
}

func toReceiptJSON(r *chain.Receipt) receiptJSON {
	out := receiptJSON{
		TxHash:      r.TxHash.Hex(),
		BlockNumber: r.BlockNumber,
		Timestamp:   r.Timestamp.Unix(),
		Status:      r.Status,
		GasUsed:     r.GasUsed,
		Err:         r.Err,
		Transfers:   []transferJSON{},
	}
	if !r.ContractAddress.IsZero() {
		out.ContractAddress = r.ContractAddress.Hex()
	}
	for _, tr := range r.Transfers {
		tj := transferJSON{
			AssetKind: tr.Asset.Kind.String(),
			From:      tr.From.Hex(),
			To:        tr.To.Hex(),
			Amount:    tr.Amount.String(),
			Depth:     tr.Depth,
		}
		if tr.Asset.Kind != chain.AssetETH {
			tj.Token = tr.Asset.Token.Hex()
			tj.TokenID = tr.Asset.TokenID
		}
		out.Transfers = append(out.Transfers, tj)
	}
	for _, ap := range r.Approvals {
		out.Approvals = append(out.Approvals, approvalJSON{
			Token:   ap.Token.Hex(),
			Kind:    ap.Kind.String(),
			Owner:   ap.Owner.Hex(),
			Spender: ap.Spender.Hex(),
			Amount:  ap.Amount.String(),
			All:     ap.All,
		})
	}
	for _, lg := range r.Logs {
		lj := logJSON{Address: lg.Address.Hex(), Data: "0x" + hex.EncodeToString(lg.Data)}
		for _, tp := range lg.Topics {
			lj.Topics = append(lj.Topics, tp.Hex())
		}
		out.Logs = append(out.Logs, lj)
	}
	return out
}

func fromReceiptJSON(in receiptJSON) (*chain.Receipt, error) {
	h, err := ethtypes.HexToHash(in.TxHash)
	if err != nil {
		return nil, err
	}
	r := &chain.Receipt{
		TxHash:      h,
		BlockNumber: in.BlockNumber,
		Timestamp:   time.Unix(in.Timestamp, 0).UTC(),
		Status:      in.Status,
		GasUsed:     in.GasUsed,
		Err:         in.Err,
	}
	if in.ContractAddress != "" {
		if r.ContractAddress, err = ethtypes.HexToAddress(in.ContractAddress); err != nil {
			return nil, err
		}
	}
	for _, tj := range in.Transfers {
		kind, err := assetKindFromString(tj.AssetKind)
		if err != nil {
			return nil, err
		}
		tr := chain.Transfer{Asset: chain.Asset{Kind: kind, TokenID: tj.TokenID}, Depth: tj.Depth}
		if tj.Token != "" {
			if tr.Asset.Token, err = ethtypes.HexToAddress(tj.Token); err != nil {
				return nil, err
			}
		}
		if tr.From, err = ethtypes.HexToAddress(tj.From); err != nil {
			return nil, err
		}
		if tr.To, err = ethtypes.HexToAddress(tj.To); err != nil {
			return nil, err
		}
		if tr.Amount, err = parseWei(tj.Amount); err != nil {
			return nil, err
		}
		r.Transfers = append(r.Transfers, tr)
	}
	for _, aj := range in.Approvals {
		kind, err := assetKindFromString(aj.Kind)
		if err != nil {
			return nil, err
		}
		ap := chain.Approval{Kind: kind, All: aj.All}
		if ap.Token, err = ethtypes.HexToAddress(aj.Token); err != nil {
			return nil, err
		}
		if ap.Owner, err = ethtypes.HexToAddress(aj.Owner); err != nil {
			return nil, err
		}
		if ap.Spender, err = ethtypes.HexToAddress(aj.Spender); err != nil {
			return nil, err
		}
		if ap.Amount, err = parseWei(aj.Amount); err != nil {
			return nil, err
		}
		r.Approvals = append(r.Approvals, ap)
	}
	for _, lj := range in.Logs {
		lg := chain.Log{}
		if lg.Address, err = ethtypes.HexToAddress(lj.Address); err != nil {
			return nil, err
		}
		for _, tp := range lj.Topics {
			topic, err := ethtypes.HexToHash(tp)
			if err != nil {
				return nil, err
			}
			lg.Topics = append(lg.Topics, topic)
		}
		raw := strings.TrimPrefix(lj.Data, "0x")
		if lg.Data, err = hex.DecodeString(raw); err != nil {
			return nil, err
		}
		r.Logs = append(r.Logs, lg)
	}
	return r, nil
}

func toLabelJSON(l labels.Label) labelJSON {
	return labelJSON{
		Address:  l.Address.Hex(),
		Source:   string(l.Source),
		Category: string(l.Category),
		Name:     l.Name,
	}
}

func fromLabelJSON(in labelJSON) (labels.Label, error) {
	addr, err := ethtypes.HexToAddress(in.Address)
	if err != nil {
		return labels.Label{}, err
	}
	return labels.Label{
		Address:  addr,
		Source:   labels.Source(in.Source),
		Category: labels.Category(in.Category),
		Name:     in.Name,
	}, nil
}

func parseWei(s string) (ethtypes.Wei, error) {
	if s == "" {
		return ethtypes.Wei{}, nil
	}
	w, ok := weiFromDecimal(s)
	if !ok {
		return ethtypes.Wei{}, fmt.Errorf("rpc: bad wei amount %q", s)
	}
	return w, nil
}
