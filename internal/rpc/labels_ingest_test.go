package rpc_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/rpc"
)

// labelFeedServer serves a repro_labels response with the given raw
// entry list, standing in for a community feed with noisy rows.
func labelFeedServer(t *testing.T, entries string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"jsonrpc":"2.0","id":1,"result":[%s]}`, entries)
	}))
}

const (
	goodLabel1 = `{"address":"0x00000000000000000000000000000000000000a1","source":"etherscan","category":"phishing","name":"Fake_Phishing1"}`
	goodLabel2 = `{"address":"0x00000000000000000000000000000000000000a2","source":"chainabuse","category":"exchange","name":"CEX hot wallet"}`
	badHex     = `{"address":"0xnothex","source":"etherscan","category":"phishing","name":"x"}`
	zeroAddr   = `{"address":"0x0000000000000000000000000000000000000000","source":"etherscan","category":"phishing","name":"x"}`
	badCat     = `{"address":"0x00000000000000000000000000000000000000a3","source":"chainabuse","category":"memes","name":"x"}`
)

// TestFetchLabelsSkipsAndCountsMalformedEntries is the regression test
// for label-ingestion robustness: malformed or schema-violating rows
// must be skipped and counted, never abort the feed, and never admit a
// bogus label.
func TestFetchLabelsSkipsAndCountsMalformedEntries(t *testing.T) {
	srv := labelFeedServer(t, goodLabel1+","+badHex+","+zeroAddr+","+goodLabel2+","+badCat)
	defer srv.Close()

	client := rpc.NewClient(srv.URL)
	dir, err := client.FetchLabels()
	if err != nil {
		t.Fatalf("noisy feed aborted ingestion: %v", err)
	}
	if got := dir.Count(); got != 2 {
		t.Errorf("directory holds %d labels, want 2 (the valid rows)", got)
	}
	if got := client.LabelsAccepted(); got != 2 {
		t.Errorf("LabelsAccepted() = %d, want 2", got)
	}
	rejects := client.LabelRejects()
	want := map[string]int64{
		"etherscan/label-malformed": 1,
		"etherscan/label-schema":    1,
		"chainabuse/label-schema":   1,
	}
	for k, n := range want {
		if rejects[k] != n {
			t.Errorf("rejects[%q] = %d, want %d (all: %v)", k, rejects[k], n, rejects)
		}
	}
	var total int64
	for _, n := range rejects {
		total += n
	}
	if total != 3 {
		t.Errorf("total rejects = %d, want 3", total)
	}
}

// TestFetchLabelsBudgetFailsPoisonedSource: a source exceeding its
// error budget fails ingestion loudly instead of silently skipping a
// feed that is mostly garbage.
func TestFetchLabelsBudgetFailsPoisonedSource(t *testing.T) {
	srv := labelFeedServer(t, badHex+","+badHex+","+badHex)
	defer srv.Close()

	client := rpc.NewClient(srv.URL)
	client.LabelErrorBudget = 2
	if _, err := client.FetchLabels(); err == nil {
		t.Fatal("poisoned feed did not fail ingestion")
	}
}
