package rpc

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/ethtypes"
	"repro/internal/radar"
)

// RadarBackend is the server-side surface of the live detection
// daemon: a point-in-time status summary and the cursor-ordered update
// feed. *radar.Radar satisfies it.
type RadarBackend interface {
	Status() radar.Status
	Updates(after uint64, limit int) ([]radar.Update, uint64, bool)
}

// radarUpdatesJSON is the daas_radarUpdates result envelope. Cursor is
// the feed's latest cursor (pass it back as "after" to poll forward);
// Dropped warns that entries between "after" and the oldest retained
// entry were evicted, so the consumer must resync from a full export.
type radarUpdatesJSON struct {
	Updates []radar.Update `json:"updates"`
	Cursor  uint64         `json:"cursor"`
	Dropped bool           `json:"dropped"`
}

// dispatchRadar answers the daas_radar* methods; handled is false for
// every other method.
func (s *Server) dispatchRadar(ctx context.Context, method string, params json.RawMessage) (any, *rpcError, bool) {
	switch method {
	case "daas_radarStatus":
		if s.Radar == nil {
			return nil, radarUnavailable(), true
		}
		st, rpcErr := offMutex(ctx, s, s.Radar.Status)
		if rpcErr != nil {
			return nil, rpcErr, true
		}
		return st, nil, true

	case "daas_radarUpdates":
		if s.Radar == nil {
			return nil, radarUnavailable(), true
		}
		var args struct {
			After uint64 `json:"after"`
			Limit int    `json:"limit"`
		}
		if len(params) > 0 && string(params) != "[]" && string(params) != "null" {
			if err := json.Unmarshal(params, &args); err != nil {
				return nil, invalidParams("want {after, limit}"), true
			}
		}
		out, rpcErr := offMutex(ctx, s, func() radarUpdatesJSON {
			ups, cursor, dropped := s.Radar.Updates(args.After, args.Limit)
			return radarUpdatesJSON{Updates: ups, Cursor: cursor, Dropped: dropped}
		})
		if rpcErr != nil {
			return nil, rpcErr, true
		}
		return out, nil, true
	}
	return nil, nil, false
}

// offMutex runs f on its own goroutine and waits for its result or the
// request deadline, whichever comes first. The radar daemon serializes
// Status/Updates behind the same mutex as Step, and a catch-up Step
// (e.g. the initial sync over thousands of blocks) can hold that mutex
// for a long time; a plain call would pin the request on a mutex wait
// the context cannot preempt, stalling past its deadline. On timeout
// the request answers -32008 and the abandoned goroutine's eventual
// result is discarded (the channel is buffered, so it never leaks).
func offMutex[T any](ctx context.Context, s *Server, f func() T) (T, *rpcError) {
	var zero T
	res := make(chan T, 1)
	panics := make(chan any, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				s.metrics().panics.Inc()
				panics <- p
			}
		}()
		res <- f()
	}()
	select {
	case v := <-res:
		return v, nil
	case p := <-panics:
		return zero, &rpcError{Code: codeInternal, Message: fmt.Sprintf("internal error: %v", p)}
	case <-ctx.Done():
		return zero, deadlineError()
	}
}

func radarUnavailable() *rpcError {
	return &rpcError{Code: codeInternal, Message: "radar unavailable: no daemon configured"}
}

// RadarStatus fetches the daemon's current status summary.
func (c *Client) RadarStatus() (radar.Status, error) {
	var out radar.Status
	err := c.call("daas_radarStatus", []any{}, &out)
	return out, err
}

// RadarUpdates fetches feed entries with cursor > after, at most limit
// (limit <= 0 means no limit). It returns the entries, the feed's
// latest cursor, and whether entries between after and the server's
// retention window were dropped (resync from a full export if so).
func (c *Client) RadarUpdates(after uint64, limit int) ([]radar.Update, uint64, bool, error) {
	params := struct {
		After uint64 `json:"after"`
		Limit int    `json:"limit"`
	}{After: after, Limit: limit}
	var out radarUpdatesJSON
	if err := c.call("daas_radarUpdates", params, &out); err != nil {
		return nil, 0, false, err
	}
	return out.Updates, out.Cursor, out.Dropped, nil
}

// BlockByNumber fetches the canonical block header at height n.
func (c *Client) BlockByNumber(n uint64) (radar.BlockRef, error) {
	var raw blockJSON
	if err := c.call("eth_getBlockByNumber", []uint64{n}, &raw); err != nil {
		return radar.BlockRef{}, err
	}
	ref := radar.BlockRef{
		Number: raw.Number,
		Time:   time.Unix(raw.Timestamp, 0).UTC(),
	}
	var err error
	if ref.Hash, err = ethtypes.HexToHash(raw.Hash); err != nil {
		return radar.BlockRef{}, err
	}
	if ref.Parent, err = ethtypes.HexToHash(raw.Parent); err != nil {
		return radar.BlockRef{}, err
	}
	for _, h := range raw.TxHashes {
		th, err := ethtypes.HexToHash(h)
		if err != nil {
			return radar.BlockRef{}, err
		}
		ref.TxHashes = append(ref.TxHashes, th)
	}
	return ref, nil
}

// ClientBlocks adapts a Client as a radar.BlockSource, so the radar
// daemon can follow the head of a remote node the same way it follows
// an in-process chain.
type ClientBlocks struct {
	Client *Client
}

// Head returns the latest block number.
func (cb ClientBlocks) Head() (uint64, error) {
	return cb.Client.BlockNumber()
}

// BlockRef returns the canonical block at height n.
func (cb ClientBlocks) BlockRef(n uint64) (radar.BlockRef, error) {
	return cb.Client.BlockByNumber(n)
}
