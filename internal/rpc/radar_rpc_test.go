package rpc_test

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/radar"
	"repro/internal/rpc"
)

// stubRadar is a canned RadarBackend for wire-contract tests.
type stubRadar struct {
	status   radar.Status
	ups      []radar.Update
	cursor   uint64
	dropped  bool
	gotAfter uint64
	gotLimit int
}

func (s *stubRadar) Status() radar.Status { return s.status }

func (s *stubRadar) Updates(after uint64, limit int) ([]radar.Update, uint64, bool) {
	s.gotAfter, s.gotLimit = after, limit
	return s.ups, s.cursor, s.dropped
}

func TestRadarRPCStatusAndUpdates(t *testing.T) {
	stub := &stubRadar{
		status: radar.Status{
			Head: 42, Cursor: 40,
			Stats:     core.Stats{Contracts: 3, Operators: 2, Affiliates: 5, ProfitTxs: 17},
			SeedStats: core.Stats{Contracts: 1, Operators: 1, Affiliates: 2, ProfitTxs: 9},
			Families:  2, Pending: 1, Reorgs: 1, Swaps: 6, UpdateCursor: 99,
		},
		ups: []radar.Update{
			{Cursor: 98, Block: 40, Kind: radar.KindContract, Address: screenAddr(1).Hex(), Discovery: "seed"},
			{Cursor: 99, Block: 40, Kind: radar.KindSwap},
		},
		cursor:  99,
		dropped: true,
	}
	srv := httptest.NewServer(&rpc.Server{Radar: stub})
	defer srv.Close()
	client := rpc.NewClient(srv.URL)

	st, err := client.RadarStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st != stub.status {
		t.Errorf("RadarStatus = %+v, want %+v", st, stub.status)
	}

	ups, cursor, dropped, err := client.RadarUpdates(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stub.gotAfter != 5 || stub.gotLimit != 2 {
		t.Errorf("server received after=%d limit=%d, want 5, 2", stub.gotAfter, stub.gotLimit)
	}
	if cursor != 99 || !dropped {
		t.Errorf("cursor=%d dropped=%v, want 99, true", cursor, dropped)
	}
	if len(ups) != 2 || ups[0] != stub.ups[0] || ups[1] != stub.ups[1] {
		t.Errorf("updates = %+v, want %+v", ups, stub.ups)
	}
}

// TestRadarUnavailable: a server without a daemon answers the radar
// methods with a clean error instead of crashing.
func TestRadarUnavailable(t *testing.T) {
	srv := httptest.NewServer(&rpc.Server{Chain: world.Chain})
	defer srv.Close()
	client := rpc.NewClient(srv.URL)
	if _, err := client.RadarStatus(); err == nil || !strings.Contains(err.Error(), "radar unavailable") {
		t.Errorf("RadarStatus error = %v, want radar unavailable", err)
	}
	if _, _, _, err := client.RadarUpdates(0, 0); err == nil || !strings.Contains(err.Error(), "radar unavailable") {
		t.Errorf("RadarUpdates error = %v, want radar unavailable", err)
	}
}

// TestClientBlocksMatchesChain: the remote BlockSource adapter reports
// the same head and block refs as the in-process one.
func TestClientBlocksMatchesChain(t *testing.T) {
	srv := httptest.NewServer(rpc.NewServer(world.Chain, world.Labels))
	defer srv.Close()
	remote := rpc.ClientBlocks{Client: rpc.NewClient(srv.URL)}
	local := radar.ChainBlocks{Chain: world.Chain}

	rh, err := remote.Head()
	if err != nil {
		t.Fatal(err)
	}
	lh, err := local.Head()
	if err != nil {
		t.Fatal(err)
	}
	if rh != lh {
		t.Fatalf("remote head = %d, local head = %d", rh, lh)
	}
	for _, n := range []uint64{0, lh / 2, lh} {
		rr, err := remote.BlockRef(n)
		if err != nil {
			t.Fatal(err)
		}
		lr, err := local.BlockRef(n)
		if err != nil {
			t.Fatal(err)
		}
		if rr.Number != lr.Number || rr.Hash != lr.Hash || rr.Parent != lr.Parent {
			t.Errorf("block %d header differs over the wire: %+v vs %+v", n, rr, lr)
		}
		if rr.Time.Unix() != lr.Time.Unix() {
			t.Errorf("block %d time differs: %v vs %v", n, rr.Time, lr.Time)
		}
		if len(rr.TxHashes) != len(lr.TxHashes) {
			t.Fatalf("block %d tx count differs: %d vs %d", n, len(rr.TxHashes), len(lr.TxHashes))
		}
		for i := range rr.TxHashes {
			if rr.TxHashes[i] != lr.TxHashes[i] {
				t.Errorf("block %d tx %d differs", n, i)
			}
		}
	}
}

// TestRadarFollowsRemoteNode runs the full daemon against a node it
// only reaches over JSON-RPC — Source and BlockSource both ride the
// wire — and checks the dataset export is byte-identical to the batch
// pipeline run over the same client. This is the deployment shape of
// daasctl radar against a live endpoint.
func TestRadarFollowsRemoteNode(t *testing.T) {
	srv := httptest.NewServer(rpc.NewServer(world.Chain, world.Labels))
	defer srv.Close()
	client := rpc.NewClient(srv.URL)

	p := &core.Pipeline{Source: client, Labels: world.Labels}
	wantDS, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := wantDS.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	r, err := radar.New(radar.Config{
		Source: client,
		Blocks: rpc.ClientBlocks{Client: client},
		Labels: world.Labels,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(); err != nil {
		t.Fatal(err)
	}
	st := r.Status()
	if st.Cursor != world.Chain.BlockCount()-1 {
		t.Fatalf("cursor = %d, want %d", st.Cursor, world.Chain.BlockCount()-1)
	}
	var got bytes.Buffer
	if err := r.ExportJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("remote-follow radar dataset differs from batch pipeline (%d vs %d bytes)", got.Len(), want.Len())
	}
	if st.Stats.Contracts == 0 || st.Stats.ProfitTxs == 0 {
		t.Errorf("empty stats over the wire: %+v", st.Stats)
	}
}
