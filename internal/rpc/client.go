package rpc

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/integrity"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/retry"
)

// Client talks JSON-RPC to a Server and satisfies core.ChainSource.
type Client struct {
	// URL is the server endpoint.
	URL string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// Metrics, when set, records per-method request counts, errors, and
	// latency histograms (daas_rpc_* metric names).
	Metrics *obs.Registry
	// Retry, when set, retries transient request failures (timeouts,
	// 5xx, 429, connection resets) under the policy. Nil performs each
	// request exactly once.
	Retry *retry.Policy
	// LabelErrorBudget caps skipped entries per label source before
	// FetchLabels fails the whole ingestion (0 = default 64).
	LabelErrorBudget int

	nextID      atomic.Int64
	metricsOnce sync.Once
	cm          clientMetrics

	labelMu        sync.Mutex
	labelRejects   map[string]int64 // "source/reason" -> skipped entries
	labelsAccepted int64
}

// clientMetrics caches the client's instruments; all nil (no-op) when
// Metrics is unset.
type clientMetrics struct {
	requests       *obs.CounterVec
	errors         *obs.CounterVec
	latency        *obs.HistogramVec
	batchSize      *obs.Histogram
	labelsRejected *obs.CounterVec
}

// noopClientMetrics serves calls made before Metrics is assigned (e.g.
// the probe requests of daas.Dial); nil instruments are no-ops. The
// real instruments are latched on first use after assignment.
var noopClientMetrics clientMetrics

// defaultHTTPClient serves every Client whose HTTPClient is nil. One
// shared instance (not one per call) keeps the transport's connection
// pool alive, so keep-alives are actually reused under load.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

func (c *Client) metrics() *clientMetrics {
	if c.Metrics == nil {
		return &noopClientMetrics
	}
	c.metricsOnce.Do(func() {
		c.cm = clientMetrics{
			requests:       c.Metrics.CounterVec("daas_rpc_requests_total", "JSON-RPC requests by method", "method"),
			errors:         c.Metrics.CounterVec("daas_rpc_request_errors_total", "failed JSON-RPC requests by method", "method"),
			latency:        c.Metrics.HistogramVec("daas_rpc_request_duration_seconds", "JSON-RPC request latency by method", obs.DefDurationBuckets, "method"),
			batchSize:      c.Metrics.Histogram("daas_rpc_batch_size", "requests per JSON-RPC batch call", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}),
			labelsRejected: c.Metrics.CounterVec("daas_labels_rejected_total", "label entries skipped during ingestion by source and reason", "source", "reason"),
		}
	})
	return &c.cm
}

// NewClient returns a client for the endpoint.
func NewClient(url string) *Client {
	return &Client{URL: url, HTTPClient: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) call(method string, params any, result any) error {
	return c.callContext(context.Background(), method, params, result)
}

// callContext issues one JSON-RPC request under the retry policy. The
// context travels down to the HTTP exchange, so cancelling it aborts
// an in-flight request (and any backoff sleep) instead of waiting out
// the HTTP client timeout.
func (c *Client) callContext(ctx context.Context, method string, params any, result any) error {
	raw, err := json.Marshal(params)
	if err != nil {
		return fmt.Errorf("rpc: encoding params: %w", err)
	}
	req := request{JSONRPC: "2.0", ID: c.nextID.Add(1), Method: method, Params: raw}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return c.Retry.Do(ctx, method, func() error {
		return c.callOnce(ctx, method, body, result)
	})
}

// callOnce performs one wire attempt; each attempt is instrumented
// separately so daas_rpc_requests_total counts what actually hit the
// server.
func (c *Client) callOnce(ctx context.Context, method string, body []byte, result any) (err error) {
	cm := c.metrics()
	cm.requests.With(method).Inc()
	start := time.Now()
	defer func() {
		cm.latency.With(method).ObserveDuration(time.Since(start))
		if err != nil {
			cm.errors.With(method).Inc()
		}
	}()
	resp, err := c.post(ctx, body)
	if err != nil {
		return fmt.Errorf("rpc: %s: %w", method, err)
	}
	defer resp.Body.Close()
	var out response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("rpc: %s: decoding response: %w", method, err)
	}
	if out.Error != nil {
		return fmt.Errorf("rpc: %s: %w", method, out.Error)
	}
	if result == nil {
		return nil
	}
	return json.Unmarshal(out.Result, result)
}

// post sends one request body and returns the HTTP response body
// reader; the caller must close it. A non-200 status surfaces as a
// *retry.HTTPError so the policy can tell a retryable 503 from a
// definitive 400.
func (c *Client) post(ctx context.Context, body []byte) (*http.Response, error) {
	httpClient := c.HTTPClient
	if httpClient == nil {
		httpClient = defaultHTTPClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, &retry.HTTPError{Status: resp.StatusCode}
	}
	return resp, nil
}

// callBatch issues n same-method requests as one spec-compliant
// JSON-RPC batch (a JSON array), matching responses to requests by id
// (the spec lets servers reorder). decode is invoked once per request
// index with its result payload.
func (c *Client) callBatch(method string, n int, params func(i int) any, decode func(i int, raw json.RawMessage) error) error {
	if n == 0 {
		return nil
	}
	reqs := make([]request, n)
	baseID := c.nextID.Add(int64(n)) - int64(n) + 1
	for i := range reqs {
		raw, err := json.Marshal(params(i))
		if err != nil {
			return fmt.Errorf("rpc: encoding batch params: %w", err)
		}
		reqs[i] = request{JSONRPC: "2.0", ID: baseID + int64(i), Method: method, Params: raw}
	}
	body, err := json.Marshal(reqs)
	if err != nil {
		return err
	}
	// The decode callbacks are idempotent per index, so a retried batch
	// simply overwrites the partial results of the failed attempt.
	return c.Retry.Do(context.Background(), method, func() error {
		return c.batchOnce(method, n, baseID, body, decode)
	})
}

// batchOnce performs one wire attempt of a batch call.
func (c *Client) batchOnce(method string, n int, baseID int64, body []byte, decode func(i int, raw json.RawMessage) error) (err error) {
	cm := c.metrics()
	cm.requests.With(method).Add(uint64(n))
	cm.batchSize.Observe(float64(n))
	start := time.Now()
	defer func() {
		cm.latency.With(method).ObserveDuration(time.Since(start))
		if err != nil {
			cm.errors.With(method).Inc()
		}
	}()
	resp, err := c.post(context.Background(), body)
	if err != nil {
		return fmt.Errorf("rpc: %s batch of %d: %w", method, n, err)
	}
	defer resp.Body.Close()
	var outs []response
	if err := json.NewDecoder(resp.Body).Decode(&outs); err != nil {
		// A parse/invalid-request failure comes back as a single error
		// object rather than an array; surface it if it does.
		return fmt.Errorf("rpc: %s batch: decoding response: %w", method, err)
	}
	if len(outs) != n {
		return fmt.Errorf("rpc: %s batch: %d responses for %d requests", method, len(outs), n)
	}
	byID := make(map[int64]*response, n)
	for i := range outs {
		byID[outs[i].ID] = &outs[i]
	}
	for i := 0; i < n; i++ {
		out, ok := byID[baseID+int64(i)]
		if !ok {
			return fmt.Errorf("rpc: %s batch: response for request %d missing", method, i)
		}
		if out.Error != nil {
			return fmt.Errorf("rpc: %s batch item %d: %w", method, i, out.Error)
		}
		if err := decode(i, out.Result); err != nil {
			return fmt.Errorf("rpc: %s batch item %d: %w", method, i, err)
		}
	}
	return nil
}

// BatchTransactions implements core.BatchSource: one round trip for
// the whole hash list.
func (c *Client) BatchTransactions(hs []ethtypes.Hash) ([]*chain.Transaction, error) {
	out := make([]*chain.Transaction, len(hs))
	err := c.callBatch("eth_getTransactionByHash", len(hs),
		func(i int) any { return []string{hs[i].Hex()} },
		func(i int, raw json.RawMessage) error {
			var tj txJSON
			if err := json.Unmarshal(raw, &tj); err != nil {
				return err
			}
			tx, err := fromTxJSON(tj)
			if err != nil {
				return err
			}
			out[i] = tx
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BatchReceipts implements core.BatchSource.
func (c *Client) BatchReceipts(hs []ethtypes.Hash) ([]*chain.Receipt, error) {
	out := make([]*chain.Receipt, len(hs))
	err := c.callBatch("repro_getReceipt", len(hs),
		func(i int) any { return []string{hs[i].Hex()} },
		func(i int, raw json.RawMessage) error {
			var rj receiptJSON
			if err := json.Unmarshal(raw, &rj); err != nil {
				return err
			}
			rec, err := fromReceiptJSON(rj)
			if err != nil {
				return err
			}
			out[i] = rec
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BlockNumber returns the head block number.
func (c *Client) BlockNumber() (uint64, error) {
	var n uint64
	err := c.call("eth_blockNumber", []any{}, &n)
	return n, err
}

// TransactionsOf implements core.ChainSource.
func (c *Client) TransactionsOf(addr ethtypes.Address) ([]ethtypes.Hash, error) {
	var raw []string
	if err := c.call("repro_transactionsOf", []string{addr.Hex()}, &raw); err != nil {
		return nil, err
	}
	out := make([]ethtypes.Hash, len(raw))
	for i, s := range raw {
		h, err := ethtypes.HexToHash(s)
		if err != nil {
			return nil, err
		}
		out[i] = h
	}
	return out, nil
}

// Transaction implements core.ChainSource.
func (c *Client) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	return c.TransactionContext(context.Background(), h)
}

// TransactionContext implements core.ContextSource: the context aborts
// the in-flight HTTP request, so the pipeline's cancel-on-first-error
// stops a doomed batch immediately.
func (c *Client) TransactionContext(ctx context.Context, h ethtypes.Hash) (*chain.Transaction, error) {
	var raw txJSON
	if err := c.callContext(ctx, "eth_getTransactionByHash", []string{h.Hex()}, &raw); err != nil {
		return nil, err
	}
	return fromTxJSON(raw)
}

// Receipt implements core.ChainSource.
func (c *Client) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	return c.ReceiptContext(context.Background(), h)
}

// ReceiptContext implements core.ContextSource; see TransactionContext.
func (c *Client) ReceiptContext(ctx context.Context, h ethtypes.Hash) (*chain.Receipt, error) {
	var raw receiptJSON
	if err := c.callContext(ctx, "repro_getReceipt", []string{h.Hex()}, &raw); err != nil {
		return nil, err
	}
	return fromReceiptJSON(raw)
}

// IsContract implements core.ChainSource.
func (c *Client) IsContract(addr ethtypes.Address) (bool, error) {
	var out bool
	err := c.call("repro_isContract", []string{addr.Hex()}, &out)
	return out, err
}

// Balance fetches an account balance.
func (c *Client) Balance(addr ethtypes.Address) (ethtypes.Wei, error) {
	var raw string
	if err := c.call("eth_getBalance", []string{addr.Hex()}, &raw); err != nil {
		return ethtypes.Wei{}, err
	}
	return parseWei(raw)
}

// Code fetches deployed bytecode.
func (c *Client) Code(addr ethtypes.Address) ([]byte, error) {
	var raw string
	if err := c.call("eth_getCode", []string{addr.Hex()}, &raw); err != nil {
		return nil, err
	}
	return decodeHexBlob(raw)
}

// StorageAt reads one storage word of a contract.
func (c *Client) StorageAt(addr ethtypes.Address, key ethtypes.Hash) (ethtypes.Hash, error) {
	var raw string
	if err := c.call("repro_getStorageAt", []string{addr.Hex(), key.Hex()}, &raw); err != nil {
		return ethtypes.Hash{}, err
	}
	return ethtypes.HexToHash(raw)
}

// LogFilter narrows a GetLogs query.
type LogFilter struct {
	FromBlock uint64
	ToBlock   uint64
	Address   *ethtypes.Address
	Topic0    *ethtypes.Hash
}

// GetLogs fetches matching event logs with their tx/block context.
func (c *Client) GetLogs(f LogFilter) ([]chain.LogEntry, error) {
	params := struct {
		FromBlock uint64 `json:"fromBlock"`
		ToBlock   uint64 `json:"toBlock"`
		Address   string `json:"address,omitempty"`
		Topic0    string `json:"topic0,omitempty"`
	}{FromBlock: f.FromBlock, ToBlock: f.ToBlock}
	if f.Address != nil {
		params.Address = f.Address.Hex()
	}
	if f.Topic0 != nil {
		params.Topic0 = f.Topic0.Hex()
	}
	var raw []logEntryJSON
	if err := c.call("repro_getLogs", params, &raw); err != nil {
		return nil, err
	}
	out := make([]chain.LogEntry, 0, len(raw))
	for _, le := range raw {
		addr, err := ethtypes.HexToAddress(le.Log.Address)
		if err != nil {
			return nil, err
		}
		entry := chain.LogEntry{
			TxHash:      ethtypes.Hash{},
			BlockNumber: le.BlockNumber,
			Timestamp:   time.Unix(le.Timestamp, 0).UTC(),
		}
		if entry.TxHash, err = ethtypes.HexToHash(le.TxHash); err != nil {
			return nil, err
		}
		entry.Address = addr
		for _, tp := range le.Log.Topics {
			topic, err := ethtypes.HexToHash(tp)
			if err != nil {
				return nil, err
			}
			entry.Topics = append(entry.Topics, topic)
		}
		if entry.Data, err = decodeHexBlob(le.Log.Data); err != nil {
			return nil, err
		}
		out = append(out, entry)
	}
	return out, nil
}

// StaticCall performs a read-only eth_call.
func (c *Client) StaticCall(to ethtypes.Address, data []byte) ([]byte, error) {
	var raw string
	if err := c.call("eth_call", []string{to.Hex(), "0x" + hex.EncodeToString(data)}, &raw); err != nil {
		return nil, err
	}
	return decodeHexBlob(raw)
}

// ScreenResult is one screening verdict from the daas_screen* methods.
type ScreenResult struct {
	Address ethtypes.Address
	// Listed reports whether the address is on the blacklist; the
	// remaining fields are only meaningful when it is.
	Listed        bool
	Kind          string
	Reason        string
	Family        string
	Tainted       bool
	StaticFlagged bool
	// SnapshotAgeSeconds is how stale the serving snapshot was when this
	// verdict was produced: 0 from a healthy server, and the whole
	// seconds since the last confirmed-fresh snapshot when the server is
	// answering in degraded mode during an upstream outage.
	SnapshotAgeSeconds uint64
}

func fromScreenResultJSON(in screenResultJSON) (ScreenResult, error) {
	a, err := ethtypes.HexToAddress(in.Address)
	if err != nil {
		return ScreenResult{}, err
	}
	return ScreenResult{
		Address: a, Listed: in.Listed, Kind: in.Kind, Reason: in.Reason,
		Family: in.Family, Tainted: in.Tainted, StaticFlagged: in.StaticFlagged,
		SnapshotAgeSeconds: in.SnapshotAge,
	}, nil
}

// Screen asks the screening service for one address verdict.
func (c *Client) Screen(addr ethtypes.Address) (ScreenResult, error) {
	var raw screenResultJSON
	if err := c.call("daas_screen", []string{addr.Hex()}, &raw); err != nil {
		return ScreenResult{}, err
	}
	return fromScreenResultJSON(raw)
}

// ScreenBatch screens many addresses in one round trip via
// daas_screenBatch (a flat address array in a single request, cheaper
// than n enveloped daas_screen calls). Results come back in input
// order. Workloads beyond the server's per-request cap are split into
// multiple requests transparently.
func (c *Client) ScreenBatch(addrs []ethtypes.Address) ([]ScreenResult, error) {
	out := make([]ScreenResult, 0, len(addrs))
	for off := 0; off < len(addrs); off += maxScreenBatch {
		end := off + maxScreenBatch
		if end > len(addrs) {
			end = len(addrs)
		}
		chunk, err := c.screenBatchOne(addrs[off:end])
		if err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
	return out, nil
}

// screenBatchOne issues one daas_screenBatch request.
func (c *Client) screenBatchOne(addrs []ethtypes.Address) ([]ScreenResult, error) {
	params := make([]string, len(addrs))
	for i, a := range addrs {
		params[i] = a.Hex()
	}
	var raw []screenResultJSON
	if err := c.call("daas_screenBatch", params, &raw); err != nil {
		return nil, err
	}
	if len(raw) != len(addrs) {
		return nil, fmt.Errorf("rpc: daas_screenBatch: %d results for %d addresses", len(raw), len(addrs))
	}
	out := make([]ScreenResult, len(raw))
	for i, rj := range raw {
		r, err := fromScreenResultJSON(rj)
		if err != nil {
			return nil, fmt.Errorf("rpc: daas_screenBatch item %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

// ScreenDomain asks the screening service whether a website domain is
// a confirmed drainer deployment.
func (c *Client) ScreenDomain(domain string) (bool, error) {
	var out bool
	err := c.call("daas_screenDomain", []string{domain}, &out)
	return out, err
}

// FetchLabels downloads the server's public label directory. Entries
// that fail wire decoding or the published schema are skipped and
// counted (LabelRejects/daas_labels_rejected_total) instead of
// aborting the ingestion — community feeds contain noise, and one
// malformed report must not discard the thousands of good ones behind
// it. A source whose rejections exceed its error budget still fails
// loudly: past that point the feed is poisoned, not noisy.
func (c *Client) FetchLabels() (*labels.Directory, error) {
	var raw []labelJSON
	if err := c.call("repro_labels", []any{}, &raw); err != nil {
		return nil, err
	}
	budget := integrity.NewLabelBudget(c.LabelErrorBudget)
	dir := labels.New()
	for _, lj := range raw {
		source := lj.Source
		if source == "" {
			source = "unknown"
		}
		l, err := fromLabelJSON(lj)
		reason := integrity.ReasonLabelMalformed
		if err == nil {
			reason = integrity.CheckLabel(l)
		}
		if reason != "" {
			c.noteLabelReject(source, reason)
			if err := budget.Note(source, reason); err != nil {
				return nil, err
			}
			continue
		}
		dir.Add(l)
		c.labelMu.Lock()
		c.labelsAccepted++
		c.labelMu.Unlock()
	}
	return dir, nil
}

// noteLabelReject books one skipped label entry in the client's ledger
// and, when Metrics is wired, the rejection counter. Dial-time
// ingestion happens before Metrics is assigned; the ledger is what the
// completeness manifest reads, so those rejects are never lost.
func (c *Client) noteLabelReject(source string, reason integrity.Reason) {
	c.labelMu.Lock()
	if c.labelRejects == nil {
		c.labelRejects = make(map[string]int64)
	}
	c.labelRejects[source+"/"+string(reason)]++
	c.labelMu.Unlock()
	c.metrics().labelsRejected.With(source, string(reason)).Inc()
}

// LabelRejects returns the per-"source/reason" counts of label entries
// skipped during ingestion.
func (c *Client) LabelRejects() map[string]int64 {
	c.labelMu.Lock()
	defer c.labelMu.Unlock()
	out := make(map[string]int64, len(c.labelRejects))
	for k, v := range c.labelRejects {
		out[k] = v
	}
	return out
}

// LabelsAccepted returns how many label entries passed ingestion.
func (c *Client) LabelsAccepted() int64 {
	c.labelMu.Lock()
	defer c.labelMu.Unlock()
	return c.labelsAccepted
}

// Helpers shared with the server.

func trim0x(s string) string { return strings.TrimPrefix(s, "0x") }

func decodeHexBlob(s string) ([]byte, error) {
	raw := trim0x(s)
	if raw == "" {
		return nil, nil
	}
	return hex.DecodeString(raw)
}

func weiFromDecimal(s string) (ethtypes.Wei, bool) {
	b, ok := new(big.Int).SetString(s, 10)
	if !ok {
		return ethtypes.Wei{}, false
	}
	return ethtypes.WeiFromBig(b), true
}
