package rpc_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/ethtypes"
	"repro/internal/obs"
	"repro/internal/rpc"
	"repro/internal/screen"
)

func screenAddr(b byte) ethtypes.Address {
	var a ethtypes.Address
	for i := range a {
		a[i] = b
	}
	return a
}

// newScreenServer builds a screening-only server (nil chain) over a
// small snapshot, mirroring what daasctl serve-screen runs.
func newScreenServer(t *testing.T, reg *obs.Registry) (*rpc.Client, func()) {
	t.Helper()
	b := screen.NewBuilder()
	b.Add(screen.Record{Address: screenAddr(1), Kind: screen.KindContract, Reason: screen.ReasonContract, Family: "Inferno", Tainted: true, StaticFlagged: true})
	b.Add(screen.Record{Address: screenAddr(2), Kind: screen.KindOperator, Reason: screen.ReasonOperator})
	b.AddDomain("Evil-Drainer.example")
	eng := screen.NewEngine(reg)
	eng.Swap(b.Build())
	srv := httptest.NewServer(&rpc.Server{Screen: eng, Metrics: reg})
	return rpc.NewClient(srv.URL), srv.Close
}

func TestScreenRPC(t *testing.T) {
	client, done := newScreenServer(t, nil)
	defer done()

	got, err := client.Screen(screenAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	want := rpc.ScreenResult{
		Address: screenAddr(1), Listed: true, Kind: "contract",
		Reason: screen.ReasonContract, Family: "Inferno", Tainted: true, StaticFlagged: true,
	}
	if got != want {
		t.Errorf("Screen = %+v, want %+v", got, want)
	}
	clean, err := client.Screen(screenAddr(9))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Listed || clean.Reason != "" {
		t.Errorf("clean address came back listed: %+v", clean)
	}

	for query, want := range map[string]bool{
		"evil-drainer.example":      true,
		"EVIL-DRAINER.example:8443": true,
		"benign.example":            false,
	} {
		listed, err := client.ScreenDomain(query)
		if err != nil {
			t.Fatal(err)
		}
		if listed != want {
			t.Errorf("ScreenDomain(%q) = %v, want %v", query, listed, want)
		}
	}
}

func TestScreenBatchRPC(t *testing.T) {
	client, done := newScreenServer(t, nil)
	defer done()

	addrs := []ethtypes.Address{screenAddr(9), screenAddr(1), screenAddr(2), screenAddr(9)}
	results, err := client.ScreenBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(addrs) {
		t.Fatalf("got %d results for %d addresses", len(results), len(addrs))
	}
	wantListed := []bool{false, true, true, false}
	for i, r := range results {
		if r.Address != addrs[i] {
			t.Errorf("result %d address = %s, want %s (order must match input)", i, r.Address, addrs[i])
		}
		if r.Listed != wantListed[i] {
			t.Errorf("result %d listed = %v, want %v", i, r.Listed, wantListed[i])
		}
	}
	if results[1].Kind != "contract" || results[2].Kind != "operator" {
		t.Errorf("batch kinds = %q, %q", results[1].Kind, results[2].Kind)
	}

	if empty, err := client.ScreenBatch(nil); err != nil || len(empty) != 0 {
		t.Errorf("empty batch = %v, %v", empty, err)
	}
}

// TestScreenArrayBatchTransport drives daas_screen through the generic
// JSON-RPC array-batch framing (many envelopes in one POST), the
// transport the batched collector methods already use.
func TestScreenArrayBatchTransport(t *testing.T) {
	client, done := newScreenServer(t, nil)
	defer done()

	body := []byte(`[` +
		`{"jsonrpc":"2.0","id":1,"method":"daas_screen","params":["` + screenAddr(1).Hex() + `"]},` +
		`{"jsonrpc":"2.0","id":2,"method":"daas_screen","params":["` + screenAddr(9).Hex() + `"]}]`)
	resp, err := http.Post(client.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var outs []struct {
		ID     int64           `json:"id"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&outs); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d responses, want 2", len(outs))
	}
	var verdicts [2]struct {
		Listed bool `json:"listed"`
	}
	for i, out := range outs {
		if err := json.Unmarshal(out.Result, &verdicts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !verdicts[0].Listed || verdicts[1].Listed {
		t.Errorf("array-batch verdicts = %+v", verdicts)
	}
}

// TestServerMetrics is the satellite for server-side observability:
// per-method request counts, errors, and latency histograms.
func TestServerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	client, done := newScreenServer(t, reg)
	defer done()

	if _, err := client.Screen(screenAddr(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ScreenBatch([]ethtypes.Address{screenAddr(1), screenAddr(2)}); err != nil {
		t.Fatal(err)
	}
	// One error: chain method on a screening-only server.
	if _, err := client.BlockNumber(); err == nil {
		t.Fatal("chain method succeeded without a chain backend")
	}
	// One unknown method, counted under the bounded "unknown" label.
	resp, err := http.Post(client.URL, "application/json",
		bytes.NewReader([]byte(`{"jsonrpc":"2.0","id":7,"method":"daas_bogus","params":[]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	snap := reg.Snapshot()
	if s := snap.Find("daas_rpc_server_requests_total", "daas_screen"); s == nil || s.Counter != 1 {
		t.Errorf("daas_screen requests = %+v, want 1", s)
	}
	if s := snap.Find("daas_rpc_server_requests_total", "daas_screenBatch"); s == nil || s.Counter != 1 {
		t.Errorf("daas_screenBatch requests = %+v, want 1", s)
	}
	if s := snap.Find("daas_rpc_server_request_errors_total", "eth_blockNumber"); s == nil || s.Counter != 1 {
		t.Errorf("eth_blockNumber errors = %+v, want 1", s)
	}
	if s := snap.Find("daas_rpc_server_requests_total", "unknown"); s == nil || s.Counter != 1 {
		t.Errorf("unknown-method requests = %+v, want 1", s)
	}
	if s := snap.Find("daas_rpc_server_request_duration_seconds", "daas_screen"); s == nil || s.Hist == nil || s.Hist.Count != 1 {
		t.Errorf("daas_screen latency = %+v, want one observation", s)
	}
}

// TestScreenUnavailable: a server without an engine answers the screen
// methods with a clean error, and a screening-only server answers
// chain methods likewise.
func TestScreenUnavailable(t *testing.T) {
	srv := httptest.NewServer(&rpc.Server{Chain: world.Chain, Labels: world.Labels})
	defer srv.Close()
	client := rpc.NewClient(srv.URL)
	if _, err := client.Screen(screenAddr(1)); err == nil {
		t.Error("Screen succeeded without an engine")
	}
	if _, err := client.ScreenDomain("evil.example"); err == nil {
		t.Error("ScreenDomain succeeded without an engine")
	}
}
