package rpc_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/rpc"
	"repro/internal/tokens"
	"repro/internal/worldgen"
)

var world = func() *worldgen.World {
	w, err := worldgen.Generate(worldgen.TestConfig(404))
	if err != nil {
		panic(err)
	}
	return w
}()

func newPair(t *testing.T) (*rpc.Client, func()) {
	t.Helper()
	srv := httptest.NewServer(rpc.NewServer(world.Chain, world.Labels))
	return rpc.NewClient(srv.URL), srv.Close
}

func TestBlockNumberAndLookups(t *testing.T) {
	client, done := newPair(t)
	defer done()

	n, err := client.BlockNumber()
	if err != nil {
		t.Fatal(err)
	}
	if n != world.Chain.BlockCount()-1 {
		t.Errorf("blockNumber = %d, want %d", n, world.Chain.BlockCount()-1)
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	client, done := newPair(t)
	defer done()

	// Pick a planted profit tx and check field fidelity.
	var h ethtypes.Hash
	for hash := range world.Truth.ProfitTxs {
		h = hash
		break
	}
	want, err := world.Chain.Transaction(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Transaction(h)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != want.From || got.Nonce != want.Nonce || got.Value.Cmp(want.Value) != 0 {
		t.Errorf("tx fields differ: %+v vs %+v", got, want)
	}
	if (got.To == nil) != (want.To == nil) || (got.To != nil && *got.To != *want.To) {
		t.Error("tx To differs")
	}
	if got.Hash() != want.Hash() {
		t.Errorf("tx hash differs after round trip: %s vs %s", got.Hash(), want.Hash())
	}
}

func TestReceiptRoundTrip(t *testing.T) {
	client, done := newPair(t)
	defer done()

	var h ethtypes.Hash
	for hash := range world.Truth.ProfitTxs {
		h = hash
		break
	}
	want, _ := world.Chain.Receipt(h)
	got, err := client.Receipt(h)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != want.Status || got.BlockNumber != want.BlockNumber {
		t.Error("receipt header differs")
	}
	if !got.Timestamp.Equal(want.Timestamp.UTC().Truncate(1e9)) {
		t.Errorf("timestamp differs: %v vs %v", got.Timestamp, want.Timestamp)
	}
	if len(got.Transfers) != len(want.Transfers) {
		t.Fatalf("transfers %d vs %d", len(got.Transfers), len(want.Transfers))
	}
	for i := range got.Transfers {
		g, w := got.Transfers[i], want.Transfers[i]
		if g.From != w.From || g.To != w.To || g.Amount.Cmp(w.Amount) != 0 || g.Asset != w.Asset {
			t.Errorf("transfer %d differs: %+v vs %+v", i, g, w)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	client, done := newPair(t)
	defer done()

	if _, err := client.Transaction(ethtypes.Hash{0xde, 0xad}); err == nil {
		t.Error("unknown tx lookup succeeded")
	}
	if _, err := client.Receipt(ethtypes.Hash{0xbe, 0xef}); err == nil {
		t.Error("unknown receipt lookup succeeded")
	}
	bad := rpc.NewClient("http://127.0.0.1:1") // nothing listens
	if _, err := bad.BlockNumber(); err == nil {
		t.Error("unreachable server succeeded")
	}
}

func TestFetchLabels(t *testing.T) {
	client, done := newPair(t)
	defer done()

	dir, err := client.FetchLabels()
	if err != nil {
		t.Fatal(err)
	}
	if len(dir.AllPhishing()) == 0 {
		t.Fatal("no labels over RPC")
	}
	// The remote directory carries the same phishing report set.
	want := world.Labels.AllPhishing()
	got := dir.AllPhishing()
	if len(got) != len(want) {
		t.Errorf("phishing reports: %d vs %d", len(got), len(want))
	}
}

// TestPipelineOverRPC is the integration test: the full snowball
// pipeline against the HTTP endpoint must reproduce the in-process
// result exactly.
func TestPipelineOverRPC(t *testing.T) {
	client, done := newPair(t)
	defer done()

	remoteLabels, err := client.FetchLabels()
	if err != nil {
		t.Fatal(err)
	}
	remote := &core.Pipeline{Source: client, Labels: remoteLabels}
	remoteDS, err := remote.Build()
	if err != nil {
		t.Fatal(err)
	}
	local := &core.Pipeline{Source: core.LocalSource{Chain: world.Chain}, Labels: world.Labels}
	localDS, err := local.Build()
	if err != nil {
		t.Fatal(err)
	}
	if remoteDS.Stats() != localDS.Stats() {
		t.Errorf("remote stats %+v != local %+v", remoteDS.Stats(), localDS.Stats())
	}
	if remoteDS.SeedStats != localDS.SeedStats {
		t.Errorf("remote seed %+v != local %+v", remoteDS.SeedStats, localDS.SeedStats)
	}
}

func TestStaticCallAndCode(t *testing.T) {
	client, done := newPair(t)
	defer done()

	// Any planted profit-sharing contract has code.
	var contract ethtypes.Address
	for addr := range world.Truth.ContractFamily {
		contract = addr
		break
	}
	code, err := client.Code(contract)
	if err != nil {
		t.Fatal(err)
	}
	if len(code) == 0 {
		t.Error("contract code empty over RPC")
	}
	ok, err := client.IsContract(contract)
	if err != nil || !ok {
		t.Errorf("IsContract = %v, %v", ok, err)
	}
	bal, err := client.Balance(contract)
	if err != nil {
		t.Fatal(err)
	}
	_ = bal
}

func TestServerRejectsGarbage(t *testing.T) {
	srv := httptest.NewServer(rpc.NewServer(world.Chain, world.Labels))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL, "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Parse errors come back as JSON-RPC errors, not HTTP failures.
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	get, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != 405 {
		t.Errorf("GET status = %d, want 405", get.StatusCode)
	}
}

// TestConcurrentPipelineOverRPC checks that parallel fetching changes
// neither dataset contents nor determinism, only wall-clock.
func TestConcurrentPipelineOverRPC(t *testing.T) {
	client, done := newPair(t)
	defer done()
	remoteLabels, err := client.FetchLabels()
	if err != nil {
		t.Fatal(err)
	}
	seq := &core.Pipeline{Source: client, Labels: remoteLabels}
	seqDS, err := seq.Build()
	if err != nil {
		t.Fatal(err)
	}
	par := &core.Pipeline{Source: client, Labels: remoteLabels, Concurrency: 8}
	parDS, err := par.Build()
	if err != nil {
		t.Fatal(err)
	}
	if seqDS.Stats() != parDS.Stats() || seqDS.SeedStats != parDS.SeedStats {
		t.Errorf("concurrent build differs: %+v vs %+v", parDS.Stats(), seqDS.Stats())
	}
	for h := range seqDS.Splits {
		if len(parDS.Splits[h]) != len(seqDS.Splits[h]) {
			t.Fatalf("split records differ at %s", h)
		}
	}
}

// TestBatchRoundTrip fetches a pile of transactions and receipts in
// one round trip each and checks fidelity against single-item calls.
func TestBatchRoundTrip(t *testing.T) {
	client, done := newPair(t)
	defer done()

	var hs []ethtypes.Hash
	for h := range world.Truth.ProfitTxs {
		hs = append(hs, h)
		if len(hs) == 5 {
			break
		}
	}
	txs, err := client.BatchTransactions(hs)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := client.BatchReceipts(hs)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != len(hs) || len(recs) != len(hs) {
		t.Fatalf("batch sizes: %d txs, %d receipts for %d hashes", len(txs), len(recs), len(hs))
	}
	for i, h := range hs {
		single, err := client.Transaction(h)
		if err != nil {
			t.Fatal(err)
		}
		if txs[i].Hash() != single.Hash() || txs[i].Hash() != h {
			t.Errorf("batch tx %d hash mismatch: %s vs %s", i, txs[i].Hash(), h)
		}
		if recs[i].TxHash != h {
			t.Errorf("batch receipt %d for wrong tx: %s", i, recs[i].TxHash)
		}
		if len(recs[i].Transfers) == 0 {
			t.Errorf("batch receipt %d lost its transfers", i)
		}
	}
	// Empty batch: no HTTP call, no error, empty result.
	empty, err := client.BatchTransactions(nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch: %v, %d results", err, len(empty))
	}
}

// TestBatchItemError ensures one unknown hash fails the whole batch
// with an attributable error.
func TestBatchItemError(t *testing.T) {
	client, done := newPair(t)
	defer done()

	var known ethtypes.Hash
	for h := range world.Truth.ProfitTxs {
		known = h
		break
	}
	_, err := client.BatchTransactions([]ethtypes.Hash{known, {0xde, 0xad}})
	if err == nil {
		t.Fatal("batch with unknown hash succeeded")
	}
	if !strings.Contains(err.Error(), "item 1") {
		t.Errorf("error does not attribute the failing item: %v", err)
	}
}

// TestMalformedBatches exercises the server's array-body error paths:
// unparsable arrays and empty batches earn a single JSON-RPC error
// object, not an array.
func TestMalformedBatches(t *testing.T) {
	srv := httptest.NewServer(rpc.NewServer(world.Chain, world.Labels))
	defer srv.Close()

	post := func(body string) map[string]any {
		t.Helper()
		resp, err := srv.Client().Post(srv.URL, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("response is not a single object: %v", err)
		}
		return out
	}
	errCode := func(out map[string]any) float64 {
		t.Helper()
		e, ok := out["error"].(map[string]any)
		if !ok {
			t.Fatalf("no error object in %v", out)
		}
		return e["code"].(float64)
	}
	if code := errCode(post(`[{"jsonrpc":"2.0","id":1,`)); code != -32700 {
		t.Errorf("truncated batch: code %v, want -32700", code)
	}
	if code := errCode(post(`[]`)); code != -32600 {
		t.Errorf("empty batch: code %v, want -32600", code)
	}
	if code := errCode(post(`[1,2]`)); code != -32700 {
		t.Errorf("non-object batch items: code %v, want -32700", code)
	}
	// A batch with an unknown method still answers per item, inside an
	// array.
	resp, err := srv.Client().Post(srv.URL, "application/json",
		strings.NewReader(`[{"jsonrpc":"2.0","id":7,"method":"no_such_method","params":[]}]`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var arr []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&arr); err != nil {
		t.Fatalf("batch response is not an array: %v", err)
	}
	if len(arr) != 1 || arr[0]["id"].(float64) != 7 {
		t.Fatalf("unexpected batch response: %v", arr)
	}
	if errCode(arr[0]) != -32601 {
		t.Errorf("unknown method in batch: code %v, want -32601", errCode(arr[0]))
	}
}

// TestStorageAtOverRPC reads profit-sharing contract configuration
// remotely (the disasm workflow).
func TestStorageAtOverRPC(t *testing.T) {
	client, done := newPair(t)
	defer done()
	var contract ethtypes.Address
	for addr := range world.Truth.ContractFamily {
		contract = addr
		break
	}
	// Slot 2 holds the operator per-mille ratio in every template.
	var slot ethtypes.Hash
	slot[31] = 2
	v, err := client.StorageAt(contract, slot)
	if err != nil {
		t.Fatal(err)
	}
	ratio := int64(v[30])<<8 | int64(v[31])
	valid := false
	for _, pm := range core.DefaultRatiosPM {
		if ratio == pm {
			valid = true
		}
	}
	if !valid {
		t.Errorf("remote storage ratio = %d, not in the documented set", ratio)
	}
}

// TestGetLogsOverRPC filters ERC-20 Transfer events remotely.
func TestGetLogsOverRPC(t *testing.T) {
	client, done := newPair(t)
	defer done()

	topic := tokens.TopicTransfer
	head, err := client.BlockNumber()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := client.GetLogs(rpc.LogFilter{FromBlock: 0, ToBlock: head, Topic0: &topic})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no Transfer events over RPC")
	}
	for i, e := range entries {
		if len(e.Topics) == 0 || e.Topics[0] != topic {
			t.Fatalf("entry %d topic mismatch", i)
		}
		if e.TxHash.IsZero() {
			t.Fatalf("entry %d missing tx hash", i)
		}
	}
	// Address filter narrows to one token.
	tokenAddr := world.TokenAddrs[0]
	narrowed, err := client.GetLogs(rpc.LogFilter{FromBlock: 0, ToBlock: head, Address: &tokenAddr, Topic0: &topic})
	if err != nil {
		t.Fatal(err)
	}
	if len(narrowed) == 0 || len(narrowed) >= len(entries) {
		t.Errorf("address filter degenerate: %d of %d", len(narrowed), len(entries))
	}
	for _, e := range narrowed {
		if e.Address != tokenAddr {
			t.Fatal("address filter leaked")
		}
	}
}
