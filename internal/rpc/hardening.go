package rpc

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Limits bounds a Server's resource consumption under hostile or
// overloaded conditions. The zero value applies the production
// defaults below; set a field negative to disable that limit
// (ReadyMaxLag, being unsigned, is disabled by setting it very large).
type Limits struct {
	// MaxBodyBytes caps one request body (http.MaxBytesReader); an
	// oversized body earns HTTP 413 and a codeInvalidRequest envelope.
	MaxBodyBytes int64
	// MaxBatch caps one generic JSON-RPC array batch; a longer array
	// earns a single codeInvalidRequest envelope.
	MaxBatch int
	// MaxInFlight caps concurrently-admitted requests. Excess load is
	// shed immediately with HTTP 503, Retry-After, and a CodeOverloaded
	// envelope — the server never queues unboundedly.
	MaxInFlight int
	// RequestTimeout bounds one request end to end: reading the body
	// (slow-loris eviction via the connection read deadline), dispatch,
	// and remaining batch items. Expiry earns CodeTimeout envelopes.
	RequestTimeout time.Duration
	// RetryAfter is advertised in the Retry-After header on shed
	// responses, rounded up to whole seconds.
	RetryAfter time.Duration
	// ReadyMaxLag is the /readyz threshold on radar head lag, in
	// blocks: a radar further behind the head marks the server
	// not-ready so load balancers rotate it out while it catches up.
	ReadyMaxLag uint64
}

// Default limits; see Limits for field semantics.
const (
	DefaultMaxBodyBytes   = 4 << 20
	DefaultMaxBatch       = 4096
	DefaultMaxInFlight    = 256
	DefaultRequestTimeout = 10 * time.Second
	DefaultRetryAfter     = time.Second
	DefaultReadyMaxLag    = 64
)

// writeGrace extends the connection write deadline past the request
// deadline so timeout/overload envelopes still reach slow-but-honest
// clients before the connection is torn down.
const writeGrace = 5 * time.Second

func (l Limits) maxBodyBytes() int64 {
	switch {
	case l.MaxBodyBytes > 0:
		return l.MaxBodyBytes
	case l.MaxBodyBytes < 0:
		return 0
	default:
		return DefaultMaxBodyBytes
	}
}

func (l Limits) maxBatch() int {
	switch {
	case l.MaxBatch > 0:
		return l.MaxBatch
	case l.MaxBatch < 0:
		return 0
	default:
		return DefaultMaxBatch
	}
}

func (l Limits) maxInFlight() int {
	switch {
	case l.MaxInFlight > 0:
		return l.MaxInFlight
	case l.MaxInFlight < 0:
		return 0
	default:
		return DefaultMaxInFlight
	}
}

func (l Limits) requestTimeout() time.Duration {
	switch {
	case l.RequestTimeout > 0:
		return l.RequestTimeout
	case l.RequestTimeout < 0:
		return 0
	default:
		return DefaultRequestTimeout
	}
}

func (l Limits) retryAfterSeconds() int {
	d := l.RetryAfter
	if d <= 0 {
		d = DefaultRetryAfter
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (l Limits) readyMaxLag() uint64 {
	if l.ReadyMaxLag > 0 {
		return l.ReadyMaxLag
	}
	return DefaultReadyMaxLag
}

// admit claims an admission slot, or reports that the server is at
// MaxInFlight and the request must be shed. The release func is nil
// exactly when admitted is false.
func (s *Server) admit() (release func(), admitted bool) {
	n := s.Limits.maxInFlight()
	if n == 0 {
		return func() {}, true
	}
	s.gateOnce.Do(func() { s.gate = make(chan struct{}, n) })
	select {
	case s.gate <- struct{}{}:
		sm := s.metrics()
		sm.inflight.Add(1)
		return func() {
			sm.inflight.Add(-1)
			<-s.gate
		}, true
	default:
		return nil, false
	}
}

// shed answers one rejected request: HTTP 503, a Retry-After hint, and
// a CodeOverloaded envelope so JSON-RPC clients see a structured error
// rather than a bare status line.
func (s *Server) shed(w http.ResponseWriter) {
	s.metrics().shed.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(s.Limits.retryAfterSeconds()))
	s.writeStatusResponse(w, http.StatusServiceUnavailable, response{
		JSONRPC: "2.0",
		Error:   &rpcError{Code: codeOverloaded, Message: "server overloaded, retry later"},
	})
}

// Ready reports whether this server should receive traffic: the
// screening engine (when attached) has a compiled snapshot, and the
// radar (when attached) is within ReadyMaxLag blocks of the head.
// The reason is empty when ready.
func (s *Server) Ready() (bool, string) {
	if s.Screen != nil && s.Screen.Snapshot() == nil {
		return false, "screening engine has no snapshot"
	}
	if s.Radar != nil {
		st := s.Radar.Status()
		if st.Head > st.Cursor {
			if lag := st.Head - st.Cursor; lag > s.Limits.readyMaxLag() {
				return false, fmt.Sprintf("radar lags head by %d blocks (max %d)", lag, s.Limits.readyMaxLag())
			}
		}
	}
	return true, ""
}

// serveHealth answers GET /healthz (liveness: the process is serving)
// and GET /readyz (readiness per Ready). Not-ready earns HTTP 503 with
// the reason, so orchestrators and humans see the same diagnosis.
func (s *Server) serveHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Path == "/healthz" {
		_, _ = io.WriteString(w, "{\"status\":\"ok\"}\n")
		return
	}
	ok, reason := s.Ready()
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = fmt.Fprintf(w, "{\"status\":\"unavailable\",\"reason\":%q}\n", reason)
		return
	}
	_, _ = io.WriteString(w, "{\"status\":\"ready\"}\n")
}

// HTTPServer wraps the handler in an http.Server with hardened
// transport timeouts derived from the request deadline: header reads,
// whole-request reads/writes, and idle keep-alives are all bounded so
// hostile connections cannot hold sockets forever.
func (s *Server) HTTPServer(addr string) *http.Server {
	rt := s.Limits.requestTimeout()
	if rt <= 0 {
		rt = 30 * time.Second
	}
	return &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       rt + writeGrace,
		WriteTimeout:      rt + writeGrace,
		IdleTimeout:       60 * time.Second,
		MaxHeaderBytes:    16 << 10,
	}
}

// GracefulServe runs srv.ListenAndServe until ctx is cancelled, then
// drains in-flight requests for up to drain before forcing the close.
// It returns nil on a clean shutdown. Both daasctl serving subcommands
// share this so SIGINT/SIGTERM never drop accepted requests.
func GracefulServe(ctx context.Context, srv *http.Server, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		err := srv.ListenAndServe()
		if err == http.ErrServerClosed {
			err = nil
		}
		errc <- err
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("rpc: draining server: %w", err)
	}
	return <-errc
}
