package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/labels"
)

// Server serves a chain (and optionally a label directory) over
// JSON-RPC 2.0. It implements http.Handler; mount it wherever.
type Server struct {
	Chain  *chain.Chain
	Labels *labels.Directory
}

// NewServer returns a handler for the given chain.
func NewServer(c *chain.Chain, l *labels.Directory) *Server {
	return &Server{Chain: c, Labels: l}
}

// ServeHTTP implements http.Handler. A body whose first token is a
// JSON array is a spec-compliant batch (JSON-RPC 2.0 §6): every
// element is dispatched and the responses come back as an array, in
// request order.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeResponse(w, response{JSONRPC: "2.0", Error: &rpcError{Code: codeParse, Message: err.Error()}})
		return
	}
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		s.serveBatch(w, trimmed)
		return
	}
	var req request
	if err := json.Unmarshal(body, &req); err != nil {
		writeResponse(w, response{JSONRPC: "2.0", Error: &rpcError{Code: codeParse, Message: err.Error()}})
		return
	}
	writeResponse(w, s.handle(req))
}

// serveBatch answers one JSON array of requests. Per the spec, a batch
// that fails to parse or is empty earns a single error object, not an
// array.
func (s *Server) serveBatch(w http.ResponseWriter, body []byte) {
	var reqs []request
	if err := json.Unmarshal(body, &reqs); err != nil {
		writeResponse(w, response{JSONRPC: "2.0", Error: &rpcError{Code: codeParse, Message: err.Error()}})
		return
	}
	if len(reqs) == 0 {
		writeResponse(w, response{JSONRPC: "2.0", Error: &rpcError{Code: codeInvalidRequest, Message: "empty batch"}})
		return
	}
	out := make([]response, len(reqs))
	for i, req := range reqs {
		out[i] = s.handle(req)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

// handle dispatches one request into one response envelope.
func (s *Server) handle(req request) response {
	resp := response{JSONRPC: "2.0", ID: req.ID}
	result, rpcErr := s.dispatch(req.Method, req.Params)
	if rpcErr != nil {
		resp.Error = rpcErr
	} else {
		raw, err := json.Marshal(result)
		if err != nil {
			resp.Error = &rpcError{Code: codeInternal, Message: err.Error()}
		} else {
			resp.Result = raw
		}
	}
	return resp
}

func writeResponse(w http.ResponseWriter, resp response) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) dispatch(method string, params json.RawMessage) (any, *rpcError) {
	switch method {
	case "eth_blockNumber":
		return s.Chain.BlockCount() - 1, nil

	case "eth_getBlockByNumber":
		var args []uint64
		if err := json.Unmarshal(params, &args); err != nil || len(args) != 1 {
			return nil, invalidParams("want [blockNumber]")
		}
		b, err := s.Chain.BlockByNumber(args[0])
		if err != nil {
			return nil, &rpcError{Code: codeInvalidParams, Message: err.Error()}
		}
		out := blockJSON{
			Number:    b.Number,
			Timestamp: b.Timestamp.Unix(),
			Hash:      b.Hash().Hex(),
			Parent:    b.Parent.Hex(),
		}
		for _, h := range b.TxHashes {
			out.TxHashes = append(out.TxHashes, h.Hex())
		}
		return out, nil

	case "eth_getTransactionByHash":
		h, rpcErr := hashParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		tx, err := s.Chain.Transaction(h)
		if err != nil {
			return nil, &rpcError{Code: codeInvalidParams, Message: err.Error()}
		}
		return toTxJSON(tx), nil

	case "repro_getReceipt":
		h, rpcErr := hashParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		r, err := s.Chain.Receipt(h)
		if err != nil {
			return nil, &rpcError{Code: codeInvalidParams, Message: err.Error()}
		}
		return toReceiptJSON(r), nil

	case "eth_getBalance":
		a, rpcErr := addressParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		return s.Chain.BalanceOf(a).String(), nil

	case "eth_getCode":
		a, rpcErr := addressParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		return fmt.Sprintf("0x%x", s.Chain.CodeAt(a)), nil

	case "eth_call":
		var args []string
		if err := json.Unmarshal(params, &args); err != nil || len(args) != 2 {
			return nil, invalidParams("want [to, data]")
		}
		to, err := ethtypes.HexToAddress(args[0])
		if err != nil {
			return nil, invalidParams(err.Error())
		}
		raw, err := decodeHexBlob(args[1])
		if err != nil {
			return nil, invalidParams(err.Error())
		}
		ret, err := s.Chain.StaticCall(to, raw)
		if err != nil {
			return nil, &rpcError{Code: codeInternal, Message: err.Error()}
		}
		return fmt.Sprintf("0x%x", ret), nil

	case "repro_getStorageAt":
		var args []string
		if err := json.Unmarshal(params, &args); err != nil || len(args) != 2 {
			return nil, invalidParams("want [address, key]")
		}
		a, err := ethtypes.HexToAddress(args[0])
		if err != nil {
			return nil, invalidParams(err.Error())
		}
		k, err := ethtypes.HexToHash(args[1])
		if err != nil {
			return nil, invalidParams(err.Error())
		}
		v := s.Chain.StorageAt(a, k)
		return v.Hex(), nil

	case "repro_isContract":
		a, rpcErr := addressParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		return s.Chain.IsContract(a), nil

	case "repro_transactionsOf":
		a, rpcErr := addressParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		hashes := s.Chain.TransactionsOf(a)
		out := make([]string, len(hashes))
		for i, h := range hashes {
			out[i] = h.Hex()
		}
		return out, nil

	case "repro_getLogs":
		var args struct {
			FromBlock uint64 `json:"fromBlock"`
			ToBlock   uint64 `json:"toBlock"`
			Address   string `json:"address,omitempty"`
			Topic0    string `json:"topic0,omitempty"`
		}
		if err := json.Unmarshal(params, &args); err != nil {
			return nil, invalidParams(err.Error())
		}
		var addrFilter *ethtypes.Address
		if args.Address != "" {
			a, err := ethtypes.HexToAddress(args.Address)
			if err != nil {
				return nil, invalidParams(err.Error())
			}
			addrFilter = &a
		}
		var topicFilter *ethtypes.Hash
		if args.Topic0 != "" {
			t, err := ethtypes.HexToHash(args.Topic0)
			if err != nil {
				return nil, invalidParams(err.Error())
			}
			topicFilter = &t
		}
		entries := s.Chain.FilterLogs(args.FromBlock, args.ToBlock, addrFilter, topicFilter)
		out := make([]logEntryJSON, 0, len(entries))
		for _, e := range entries {
			lj := logJSON{Address: e.Address.Hex(), Data: fmt.Sprintf("0x%x", e.Data)}
			for _, tp := range e.Topics {
				lj.Topics = append(lj.Topics, tp.Hex())
			}
			out = append(out, logEntryJSON{
				Log: lj, TxHash: e.TxHash.Hex(), BlockNumber: e.BlockNumber, Timestamp: e.Timestamp.Unix(),
			})
		}
		return out, nil

	case "repro_labels":
		if s.Labels == nil {
			return []labelJSON{}, nil
		}
		var out []labelJSON
		for _, src := range labels.AllSources {
			for _, addr := range s.Labels.PhishingReports(src) {
				for _, l := range s.Labels.Of(addr) {
					if l.Source == src {
						out = append(out, toLabelJSON(l))
					}
				}
			}
		}
		return out, nil

	default:
		return nil, &rpcError{Code: codeMethodNotFound, Message: "unknown method " + method}
	}
}

func invalidParams(msg string) *rpcError {
	return &rpcError{Code: codeInvalidParams, Message: msg}
}

func hashParam(params json.RawMessage) (ethtypes.Hash, *rpcError) {
	var args []string
	if err := json.Unmarshal(params, &args); err != nil || len(args) != 1 {
		return ethtypes.Hash{}, invalidParams("want [hash]")
	}
	h, err := ethtypes.HexToHash(args[0])
	if err != nil {
		return ethtypes.Hash{}, invalidParams(err.Error())
	}
	return h, nil
}

func addressParam(params json.RawMessage) (ethtypes.Address, *rpcError) {
	var args []string
	if err := json.Unmarshal(params, &args); err != nil || len(args) != 1 {
		return ethtypes.Address{}, invalidParams("want [address]")
	}
	a, err := ethtypes.HexToAddress(args[0])
	if err != nil {
		return ethtypes.Address{}, invalidParams(err.Error())
	}
	return a, nil
}
