package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
	"repro/internal/labels"
	"repro/internal/obs"
	"repro/internal/screen"
)

// Server serves a chain (and optionally a label directory) over
// JSON-RPC 2.0. It implements http.Handler; mount it wherever.
type Server struct {
	// Chain backs the eth_*/repro_* methods; nil (a screening-only
	// server) answers them with an error instead of crashing.
	Chain  *chain.Chain
	Labels *labels.Directory
	// Screen, when set, serves the daas_screen* methods off the engine's
	// current snapshot.
	Screen *screen.Engine
	// Radar, when set, serves the daas_radar* methods off the live
	// detection daemon.
	Radar RadarBackend
	// Metrics, when set, records server-side per-method request counts,
	// errors, and latency (daas_rpc_server_* metric names).
	Metrics *obs.Registry
	// Limits bounds body size, batch length, concurrency, and request
	// deadlines; the zero value applies production defaults.
	Limits Limits

	metricsOnce sync.Once
	sm          serverMetrics

	// gate is the admission semaphore, sized lazily from Limits on the
	// first request.
	gateOnce sync.Once
	gate     chan struct{}
}

// serverMetrics caches the server's instruments; all nil (no-op) when
// Metrics is unset.
type serverMetrics struct {
	requests    *obs.CounterVec
	errors      *obs.CounterVec
	latency     *obs.HistogramVec
	panics      *obs.Counter
	shed        *obs.Counter
	writeErrors *obs.Counter
	inflight    *obs.Gauge
}

var noopServerMetrics serverMetrics

func (s *Server) metrics() *serverMetrics {
	if s.Metrics == nil {
		return &noopServerMetrics
	}
	s.metricsOnce.Do(func() {
		s.sm = serverMetrics{
			requests:    s.Metrics.CounterVec("daas_rpc_server_requests_total", "JSON-RPC requests served by method", "method"),
			errors:      s.Metrics.CounterVec("daas_rpc_server_request_errors_total", "JSON-RPC requests answered with an error by method", "method"),
			latency:     s.Metrics.HistogramVec("daas_rpc_server_request_duration_seconds", "server-side request handling latency by method", obs.DefDurationBuckets, "method"),
			panics:      s.Metrics.Counter("daas_rpc_server_panics_total", "handler panics recovered into codeInternal responses"),
			shed:        s.Metrics.Counter("daas_rpc_server_shed_total", "requests shed by the admission gate with codeOverloaded"),
			writeErrors: s.Metrics.Counter("daas_rpc_server_write_errors_total", "responses dropped because the client connection failed mid-write"),
			inflight:    s.Metrics.Gauge("daas_rpc_server_inflight", "requests currently admitted and being handled"),
		}
	})
	return &s.sm
}

// knownMethods bounds the method label cardinality: requests for
// anything else are counted under "unknown" so a garbage-spraying
// client cannot grow the registry without limit.
var knownMethods = map[string]bool{
	"eth_blockNumber": true, "eth_getBlockByNumber": true,
	"eth_getTransactionByHash": true, "repro_getReceipt": true,
	"eth_getBalance": true, "eth_getCode": true, "eth_call": true,
	"repro_getStorageAt": true, "repro_isContract": true,
	"repro_transactionsOf": true, "repro_getLogs": true,
	"repro_labels": true, "daas_screen": true,
	"daas_screenBatch": true, "daas_screenDomain": true,
	"daas_radarStatus": true, "daas_radarUpdates": true,
}

// maxScreenBatch caps one daas_screenBatch request. Anything larger is
// rejected with invalid-params instead of tying up the handler; the
// client splits oversized workloads into multiple requests.
const maxScreenBatch = 4096

func metricMethod(m string) string {
	if knownMethods[m] {
		return m
	}
	return "unknown"
}

// NewServer returns a handler for the given chain.
func NewServer(c *chain.Chain, l *labels.Directory) *Server {
	return &Server{Chain: c, Labels: l}
}

// ServeHTTP implements http.Handler. A body whose first token is a
// JSON array is a spec-compliant batch (JSON-RPC 2.0 §6): every
// element is dispatched and the responses come back as an array, in
// request order.
//
// The handler is the overload front door: GET /healthz and /readyz
// bypass the JSON-RPC machinery; everything else passes the admission
// gate (shed with CodeOverloaded + Retry-After when full), a body-size
// cap, per-connection read/write deadlines against slow-loris clients,
// and a per-request context deadline. A panic anywhere in handling is
// recovered into a codeInternal envelope instead of killing the
// connection's serve goroutine.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && (r.URL.Path == "/healthz" || r.URL.Path == "/readyz") {
		s.serveHealth(w, r)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	defer func() {
		if rec := recover(); rec != nil {
			s.metrics().panics.Inc()
			s.writeStatusResponse(w, http.StatusInternalServerError, response{
				JSONRPC: "2.0",
				Error:   &rpcError{Code: codeInternal, Message: fmt.Sprintf("internal error: %v", rec)},
			})
		}
	}()

	release, admitted := s.admit()
	if !admitted {
		s.shed(w)
		return
	}
	defer release()

	ctx := r.Context()
	if rt := s.Limits.requestTimeout(); rt > 0 {
		deadline := time.Now().Add(rt)
		// Bound the network reads/writes too: a client trickling its
		// body (slow loris) is evicted at the request deadline instead
		// of holding an admission slot; errors mean the transport does
		// not support per-request deadlines (e.g. test recorders) and
		// the context deadline alone applies.
		rc := http.NewResponseController(w)
		_ = rc.SetReadDeadline(deadline)
		_ = rc.SetWriteDeadline(deadline.Add(writeGrace))
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}

	body, err := readBody(w, r, s.Limits.maxBodyBytes())
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeStatusResponse(w, http.StatusRequestEntityTooLarge, response{
				JSONRPC: "2.0",
				Error:   &rpcError{Code: codeInvalidRequest, Message: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)},
			})
			return
		}
		s.writeResponse(w, response{JSONRPC: "2.0", Error: &rpcError{Code: codeParse, Message: err.Error()}})
		return
	}
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		s.serveBatch(ctx, w, trimmed)
		return
	}
	var req request
	if err := json.Unmarshal(body, &req); err != nil {
		s.writeResponse(w, response{JSONRPC: "2.0", Error: &rpcError{Code: codeParse, Message: err.Error()}})
		return
	}
	s.writeResponse(w, s.handle(ctx, req))
}

// readBody drains one request body under the configured cap (0 = no
// cap). The MaxBytesReader also arms the server to close the
// connection when the cap trips, so an attacker cannot keep streaming.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body := r.Body
	if limit > 0 {
		body = http.MaxBytesReader(w, body, limit)
	}
	return io.ReadAll(body)
}

// serveBatch answers one JSON array of requests. Per the spec, a batch
// that fails to parse or is empty earns a single error object, not an
// array; one exceeding Limits.MaxBatch is rejected the same way before
// any element is dispatched. Once the request deadline expires, the
// remaining elements are answered with CodeTimeout envelopes rather
// than silently holding the admission slot.
func (s *Server) serveBatch(ctx context.Context, w http.ResponseWriter, body []byte) {
	var reqs []request
	if err := json.Unmarshal(body, &reqs); err != nil {
		s.writeResponse(w, response{JSONRPC: "2.0", Error: &rpcError{Code: codeParse, Message: err.Error()}})
		return
	}
	if len(reqs) == 0 {
		s.writeResponse(w, response{JSONRPC: "2.0", Error: &rpcError{Code: codeInvalidRequest, Message: "empty batch"}})
		return
	}
	if max := s.Limits.maxBatch(); max > 0 && len(reqs) > max {
		s.writeResponse(w, response{JSONRPC: "2.0", Error: &rpcError{
			Code: codeInvalidRequest, Message: fmt.Sprintf("batch of %d exceeds limit %d", len(reqs), max),
		}})
		return
	}
	out := make([]response, len(reqs))
	for i, req := range reqs {
		out[i] = s.handle(ctx, req)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		s.metrics().writeErrors.Inc()
	}
}

// handle dispatches one request into one response envelope. Every
// request — batched or not — is booked against the server-side
// instruments here, so daas_rpc_server_requests_total counts batch
// items individually. A panicking handler yields codeInternal for that
// element only, and an expired context yields CodeTimeout without
// dispatching.
func (s *Server) handle(ctx context.Context, req request) (resp response) {
	sm := s.metrics()
	method := metricMethod(req.Method)
	sm.requests.With(method).Inc()
	start := time.Now()
	resp = response{JSONRPC: "2.0", ID: req.ID}
	defer func() {
		if rec := recover(); rec != nil {
			sm.panics.Inc()
			resp.Result = nil
			resp.Error = &rpcError{Code: codeInternal, Message: fmt.Sprintf("internal error: %v", rec)}
		}
		sm.latency.With(method).ObserveDuration(time.Since(start))
		if resp.Error != nil {
			sm.errors.With(method).Inc()
		}
	}()
	if ctx.Err() != nil {
		resp.Error = deadlineError()
		return resp
	}
	result, rpcErr := s.dispatch(ctx, req.Method, req.Params)
	if rpcErr != nil {
		resp.Error = rpcErr
	} else {
		raw, err := json.Marshal(result)
		if err != nil {
			resp.Error = &rpcError{Code: codeInternal, Message: err.Error()}
		} else {
			resp.Result = raw
		}
	}
	return resp
}

func (s *Server) writeResponse(w http.ResponseWriter, resp response) {
	s.writeStatusResponse(w, http.StatusOK, resp)
}

// writeStatusResponse writes one envelope with the given HTTP status,
// counting clients that vanished mid-write instead of dropping the
// error on the floor.
func (s *Server) writeStatusResponse(w http.ResponseWriter, status int, resp response) {
	w.Header().Set("Content-Type", "application/json")
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		s.metrics().writeErrors.Inc()
	}
}

func deadlineError() *rpcError {
	return &rpcError{Code: codeTimeout, Message: "request deadline exceeded"}
}

func (s *Server) dispatch(ctx context.Context, method string, params json.RawMessage) (any, *rpcError) {
	if result, rpcErr, handled := s.dispatchScreen(ctx, method, params); handled {
		return result, rpcErr
	}
	if result, rpcErr, handled := s.dispatchRadar(ctx, method, params); handled {
		return result, rpcErr
	}
	if s.Chain == nil && method != "repro_labels" {
		return nil, &rpcError{Code: codeInternal, Message: "method " + method + " needs a chain backend"}
	}
	switch method {
	case "eth_blockNumber":
		return s.Chain.BlockCount() - 1, nil

	case "eth_getBlockByNumber":
		var args []uint64
		if err := json.Unmarshal(params, &args); err != nil || len(args) != 1 {
			return nil, invalidParams("want [blockNumber]")
		}
		b, err := s.Chain.BlockByNumber(args[0])
		if err != nil {
			return nil, &rpcError{Code: codeInvalidParams, Message: err.Error()}
		}
		out := blockJSON{
			Number:    b.Number,
			Timestamp: b.Timestamp.Unix(),
			Hash:      b.Hash().Hex(),
			Parent:    b.Parent.Hex(),
		}
		for _, h := range b.TxHashes {
			out.TxHashes = append(out.TxHashes, h.Hex())
		}
		return out, nil

	case "eth_getTransactionByHash":
		h, rpcErr := hashParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		tx, err := s.Chain.Transaction(h)
		if err != nil {
			return nil, &rpcError{Code: codeInvalidParams, Message: err.Error()}
		}
		return toTxJSON(tx), nil

	case "repro_getReceipt":
		h, rpcErr := hashParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		r, err := s.Chain.Receipt(h)
		if err != nil {
			return nil, &rpcError{Code: codeInvalidParams, Message: err.Error()}
		}
		return toReceiptJSON(r), nil

	case "eth_getBalance":
		a, rpcErr := addressParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		return s.Chain.BalanceOf(a).String(), nil

	case "eth_getCode":
		a, rpcErr := addressParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		return fmt.Sprintf("0x%x", s.Chain.CodeAt(a)), nil

	case "eth_call":
		var args []string
		if err := json.Unmarshal(params, &args); err != nil || len(args) != 2 {
			return nil, invalidParams("want [to, data]")
		}
		to, err := ethtypes.HexToAddress(args[0])
		if err != nil {
			return nil, invalidParams(err.Error())
		}
		raw, err := decodeHexBlob(args[1])
		if err != nil {
			return nil, invalidParams(err.Error())
		}
		ret, err := s.Chain.StaticCall(to, raw)
		if err != nil {
			return nil, &rpcError{Code: codeInternal, Message: err.Error()}
		}
		return fmt.Sprintf("0x%x", ret), nil

	case "repro_getStorageAt":
		var args []string
		if err := json.Unmarshal(params, &args); err != nil || len(args) != 2 {
			return nil, invalidParams("want [address, key]")
		}
		a, err := ethtypes.HexToAddress(args[0])
		if err != nil {
			return nil, invalidParams(err.Error())
		}
		k, err := ethtypes.HexToHash(args[1])
		if err != nil {
			return nil, invalidParams(err.Error())
		}
		v := s.Chain.StorageAt(a, k)
		return v.Hex(), nil

	case "repro_isContract":
		a, rpcErr := addressParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		return s.Chain.IsContract(a), nil

	case "repro_transactionsOf":
		a, rpcErr := addressParam(params)
		if rpcErr != nil {
			return nil, rpcErr
		}
		hashes := s.Chain.TransactionsOf(a)
		out := make([]string, len(hashes))
		for i, h := range hashes {
			out[i] = h.Hex()
		}
		return out, nil

	case "repro_getLogs":
		var args struct {
			FromBlock uint64 `json:"fromBlock"`
			ToBlock   uint64 `json:"toBlock"`
			Address   string `json:"address,omitempty"`
			Topic0    string `json:"topic0,omitempty"`
		}
		if err := json.Unmarshal(params, &args); err != nil {
			return nil, invalidParams(err.Error())
		}
		var addrFilter *ethtypes.Address
		if args.Address != "" {
			a, err := ethtypes.HexToAddress(args.Address)
			if err != nil {
				return nil, invalidParams(err.Error())
			}
			addrFilter = &a
		}
		var topicFilter *ethtypes.Hash
		if args.Topic0 != "" {
			t, err := ethtypes.HexToHash(args.Topic0)
			if err != nil {
				return nil, invalidParams(err.Error())
			}
			topicFilter = &t
		}
		entries := s.Chain.FilterLogs(args.FromBlock, args.ToBlock, addrFilter, topicFilter)
		out := make([]logEntryJSON, 0, len(entries))
		for _, e := range entries {
			lj := logJSON{Address: e.Address.Hex(), Data: fmt.Sprintf("0x%x", e.Data)}
			for _, tp := range e.Topics {
				lj.Topics = append(lj.Topics, tp.Hex())
			}
			out = append(out, logEntryJSON{
				Log: lj, TxHash: e.TxHash.Hex(), BlockNumber: e.BlockNumber, Timestamp: e.Timestamp.Unix(),
			})
		}
		return out, nil

	case "repro_labels":
		if s.Labels == nil {
			return []labelJSON{}, nil
		}
		var out []labelJSON
		for _, src := range labels.AllSources {
			for _, addr := range s.Labels.PhishingReports(src) {
				for _, l := range s.Labels.Of(addr) {
					if l.Source == src {
						out = append(out, toLabelJSON(l))
					}
				}
			}
		}
		return out, nil

	default:
		return nil, &rpcError{Code: codeMethodNotFound, Message: "unknown method " + method}
	}
}

// screenCtxStride is how many daas_screenBatch lookups run between
// context-deadline checks: cheap enough to keep the hot loop tight,
// frequent enough that an expired request releases its admission slot
// promptly.
const screenCtxStride = 256

// dispatchScreen answers the daas_screen* methods off the screening
// engine's current snapshot; handled is false for every other method.
// daas_screenBatch takes a flat address array in one request — the
// high-throughput path — while single daas_screen requests also ride
// the generic JSON-RPC array-batch transport.
func (s *Server) dispatchScreen(ctx context.Context, method string, params json.RawMessage) (any, *rpcError, bool) {
	switch method {
	case "daas_screen":
		if s.Screen == nil {
			return nil, screenUnavailable(), true
		}
		a, rpcErr := addressParam(params)
		if rpcErr != nil {
			return nil, rpcErr, true
		}
		return s.screenOne(a, s.snapshotAge()), nil, true

	case "daas_screenBatch":
		if s.Screen == nil {
			return nil, screenUnavailable(), true
		}
		var args []string
		if err := json.Unmarshal(params, &args); err != nil {
			return nil, invalidParams("want [address, ...]"), true
		}
		if len(args) > maxScreenBatch {
			return nil, invalidParams(fmt.Sprintf("batch of %d exceeds limit %d", len(args), maxScreenBatch)), true
		}
		age := s.snapshotAge()
		out := make([]screenResultJSON, len(args))
		for i, raw := range args {
			if i%screenCtxStride == 0 && ctx.Err() != nil {
				return nil, deadlineError(), true
			}
			a, err := ethtypes.HexToAddress(raw)
			if err != nil {
				return nil, invalidParams(fmt.Sprintf("address %d: %s", i, err)), true
			}
			out[i] = s.screenOne(a, age)
		}
		return out, nil, true

	case "daas_screenDomain":
		if s.Screen == nil {
			return nil, screenUnavailable(), true
		}
		var args []string
		if err := json.Unmarshal(params, &args); err != nil || len(args) != 1 {
			return nil, invalidParams("want [domain]"), true
		}
		return s.Screen.ScreenDomain(args[0]), nil, true
	}
	return nil, nil, false
}

// snapshotAge is the whole seconds since the engine's snapshot was
// last confirmed fresh, stamped into every screening verdict. A
// healthy upstream keeps it at 0 (sub-second freshness rounds down),
// so the field only appears on the wire while serving degraded.
func (s *Server) snapshotAge() uint64 {
	age := s.Screen.Age()
	if age <= 0 {
		return 0
	}
	return uint64(age / time.Second)
}

// screenOne books one engine lookup into the wire DTO.
func (s *Server) screenOne(a ethtypes.Address, age uint64) screenResultJSON {
	rec, ok := s.Screen.Screen(a)
	out := screenResultJSON{Address: a.Hex(), Listed: ok, SnapshotAge: age}
	if ok {
		out.Kind = rec.Kind.String()
		out.Reason = rec.Reason
		out.Family = rec.Family
		out.Tainted = rec.Tainted
		out.StaticFlagged = rec.StaticFlagged
	}
	return out
}

func screenUnavailable() *rpcError {
	return &rpcError{Code: codeInternal, Message: "screening unavailable: no engine configured"}
}

func invalidParams(msg string) *rpcError {
	return &rpcError{Code: codeInvalidParams, Message: msg}
}

func hashParam(params json.RawMessage) (ethtypes.Hash, *rpcError) {
	var args []string
	if err := json.Unmarshal(params, &args); err != nil || len(args) != 1 {
		return ethtypes.Hash{}, invalidParams("want [hash]")
	}
	h, err := ethtypes.HexToHash(args[0])
	if err != nil {
		return ethtypes.Hash{}, invalidParams(err.Error())
	}
	return h, nil
}

func addressParam(params json.RawMessage) (ethtypes.Address, *rpcError) {
	var args []string
	if err := json.Unmarshal(params, &args); err != nil || len(args) != 1 {
		return ethtypes.Address{}, invalidParams("want [address]")
	}
	a, err := ethtypes.HexToAddress(args[0])
	if err != nil {
		return ethtypes.Address{}, invalidParams(err.Error())
	}
	return a, nil
}
