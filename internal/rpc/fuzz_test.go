package rpc_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/radar"
	"repro/internal/rpc"
	"repro/internal/screen"
)

// fuzzEnvelope is the minimal well-formedness contract every response
// must satisfy: a JSON-RPC 2.0 version tag and either a result or an
// error object.
type fuzzEnvelope struct {
	JSONRPC string          `json:"jsonrpc"`
	Result  json.RawMessage `json:"result"`
	Error   *struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func checkFuzzEnvelope(t *testing.T, e fuzzEnvelope, body []byte) {
	t.Helper()
	if e.JSONRPC != "2.0" {
		t.Fatalf("jsonrpc = %q for input %q", e.JSONRPC, body)
	}
	if e.Error == nil && len(e.Result) == 0 {
		t.Fatalf("response has neither result nor error for input %q", body)
	}
	if e.Error != nil && e.Error.Code == 0 {
		t.Fatalf("error with zero code for input %q", body)
	}
}

// FuzzServeHTTP drives the hardened server with arbitrary bodies —
// truncated JSON, deep nesting, wrong-typed fields, huge ids, giant
// arrays — asserting it never panics and always answers a well-formed
// JSON-RPC envelope (or envelope array) with an expected HTTP status.
func FuzzServeHTTP(f *testing.F) {
	for _, seed := range [][]byte{
		[]byte(``),
		[]byte(`{}`),
		[]byte(`null`),
		[]byte(`true`),
		[]byte(`[`),
		[]byte(`[]`),
		[]byte(`[{}]`),
		[]byte(`[{},{},{}]`),
		[]byte(`{"jsonrpc":"2.0","id":1,"method":"daas_screen","params":["0x0101010101010101010101010101010101010101"]}`),
		[]byte(`{"jsonrpc":"2.0","id":1,"method":"daas_screenBatch","params":[["not","strings",1]]}`),
		[]byte(`{"jsonrpc":"2.0","id":1,"meth`),
		[]byte(`{"id":"string-id","method":5,"params":"?"}`),
		[]byte(`{"jsonrpc":"2.0","id":99999999999999999999999999999,"method":"eth_blockNumber"}`),
		[]byte(`{"jsonrpc":"2.0","id":1,"method":"eth_call","params":["0xzz","0x"]}`),
		[]byte(`{"jsonrpc":"2.0","id":1,"method":"daas_radarUpdates","params":[-1,-1]}`),
		[]byte(`{"jsonrpc":"2.0","id":1,"method":"repro_getLogs","params":{"fromBlock":18446744073709551615}}`),
		[]byte(strings.Repeat(`[`, 2000)),
		[]byte(`{"jsonrpc":"2.0","id":1,"method":"daas_screen","params":` + strings.Repeat(`[`, 500) + strings.Repeat(`]`, 500) + `}`),
		[]byte(`[{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]},{"jsonrpc":"2.0","id":2,"method":"nope"}]`),
		bytes.Repeat([]byte(`a`), 4096),
	} {
		f.Add(seed)
	}

	b := screen.NewBuilder()
	b.Add(screen.Record{Address: screenAddr(1), Kind: screen.KindContract, Reason: screen.ReasonContract})
	b.AddDomain("drainer.example")
	eng := screen.NewEngine(nil)
	eng.Swap(b.Build())
	srv := &rpc.Server{
		Chain:  world.Chain,
		Labels: world.Labels,
		Screen: eng,
		Radar:  &stubRadar{status: radar.Status{Head: 10, Cursor: 10}},
		Limits: rpc.Limits{MaxBodyBytes: 64 << 10, MaxBatch: 64},
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)

		res := rec.Result()
		defer res.Body.Close()
		switch res.StatusCode {
		case http.StatusOK, http.StatusRequestEntityTooLarge, http.StatusServiceUnavailable:
		default:
			t.Fatalf("status %d for input %q", res.StatusCode, body)
		}
		data, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatalf("reading response: %v", err)
		}
		trimmed := bytes.TrimLeft(data, " \t\r\n")
		if len(trimmed) == 0 {
			t.Fatalf("empty response for input %q", body)
		}
		if trimmed[0] == '[' {
			var envs []fuzzEnvelope
			if err := json.Unmarshal(trimmed, &envs); err != nil {
				t.Fatalf("batch response is not JSON (%v) for input %q", err, body)
			}
			if len(envs) == 0 {
				t.Fatalf("empty batch response for input %q", body)
			}
			for _, e := range envs {
				checkFuzzEnvelope(t, e, body)
			}
			return
		}
		var env fuzzEnvelope
		if err := json.Unmarshal(trimmed, &env); err != nil {
			t.Fatalf("response is not JSON (%v) for input %q", err, body)
		}
		checkFuzzEnvelope(t, env, body)
	})
}
