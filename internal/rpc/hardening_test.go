package rpc_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/radar"
	"repro/internal/rpc"
	"repro/internal/screen"
)

// envelope mirrors the JSON-RPC response wire shape for assertions.
type envelope struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      int64           `json:"id"`
	Result  json.RawMessage `json:"result"`
	Error   *struct {
		Code    int    `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// postRaw sends one raw body and decodes a single-envelope response.
func postOne(t *testing.T, url string, body string) (*http.Response, envelope) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("response is not a JSON-RPC envelope: %v", err)
	}
	return resp, env
}

// newHardenedScreenServer builds a screening server with the given
// limits over a one-record snapshot.
func newHardenedScreenServer(t *testing.T, reg *obs.Registry, lim rpc.Limits) (*rpc.Server, *httptest.Server) {
	t.Helper()
	b := screen.NewBuilder()
	b.Add(screen.Record{Address: screenAddr(1), Kind: screen.KindContract, Reason: screen.ReasonContract})
	eng := screen.NewEngine(reg)
	eng.Swap(b.Build())
	s := &rpc.Server{Screen: eng, Metrics: reg, Limits: lim}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestBodyCap: an oversized body earns HTTP 413 and an invalid-request
// envelope instead of being buffered whole.
func TestBodyCap(t *testing.T) {
	_, ts := newHardenedScreenServer(t, nil, rpc.Limits{MaxBodyBytes: 128})
	body := fmt.Sprintf(`{"jsonrpc":"2.0","id":1,"method":"daas_screen","params":["%s"]}`,
		strings.Repeat("ab", 200))
	resp, env := postOne(t, ts.URL, body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
	if env.Error == nil || env.Error.Code != -32600 {
		t.Errorf("error = %+v, want code -32600", env.Error)
	}
}

// TestBatchCap: a generic JSON-RPC array batch beyond MaxBatch is
// rejected with a single error envelope before any element runs.
func TestBatchCap(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newHardenedScreenServer(t, reg, rpc.Limits{MaxBatch: 2})
	var reqs []string
	for i := 0; i < 3; i++ {
		reqs = append(reqs, fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":"daas_screen","params":["0x0101010101010101010101010101010101010101"]}`, i))
	}
	resp, env := postOne(t, ts.URL, "["+strings.Join(reqs, ",")+"]")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
	if env.Error == nil || env.Error.Code != -32600 || !strings.Contains(env.Error.Message, "exceeds limit 2") {
		t.Errorf("error = %+v, want batch-limit invalid-request", env.Error)
	}
	// No element was dispatched.
	if s := reg.Snapshot().Find("daas_rpc_server_requests_total", "daas_screen"); s != nil && s.Counter != 0 {
		t.Errorf("daas_screen requests = %v, want none", s.Counter)
	}
}

// blockingRadar parks Status callers until released, so tests can pin
// a request in-flight deterministically.
type blockingRadar struct {
	started chan struct{} // closed... signalled once per Status entry
	release chan struct{}
}

func (b *blockingRadar) Status() radar.Status {
	b.started <- struct{}{}
	<-b.release
	return radar.Status{}
}

func (b *blockingRadar) Updates(after uint64, limit int) ([]radar.Update, uint64, bool) {
	return nil, 0, false
}

// TestOverloadShed: with MaxInFlight=1 and one request parked, the
// next request is shed immediately with HTTP 503, Retry-After, and a
// CodeOverloaded envelope — it never queues.
func TestOverloadShed(t *testing.T) {
	reg := obs.NewRegistry()
	rb := &blockingRadar{started: make(chan struct{}, 1), release: make(chan struct{})}
	s := &rpc.Server{Radar: rb, Metrics: reg, Limits: rpc.Limits{MaxInFlight: 1, RetryAfter: 3 * time.Second}}
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Post(ts.URL, "application/json",
			strings.NewReader(`{"jsonrpc":"2.0","id":1,"method":"daas_radarStatus","params":[]}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-rb.started // the slot holder is inside dispatch

	resp, env := postOne(t, ts.URL, `{"jsonrpc":"2.0","id":2,"method":"daas_radarStatus","params":[]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want %q", got, "3")
	}
	if env.Error == nil || env.Error.Code != rpc.CodeOverloaded {
		t.Errorf("error = %+v, want CodeOverloaded", env.Error)
	}
	close(rb.release)
	wg.Wait()

	snap := reg.Snapshot()
	if s := snap.Find("daas_rpc_server_shed_total"); s == nil || s.Counter != 1 {
		t.Errorf("shed counter = %+v, want 1", s)
	}
	if s := snap.Find("daas_rpc_server_inflight"); s == nil || s.Gauge != 0 {
		t.Errorf("inflight gauge = %+v, want 0 after drain", s)
	}
}

// slowRadar burns wall clock per Status call so a batch overruns the
// request deadline partway through.
type slowRadar struct{ delay time.Duration }

func (s *slowRadar) Status() radar.Status {
	time.Sleep(s.delay)
	return radar.Status{}
}

func (s *slowRadar) Updates(after uint64, limit int) ([]radar.Update, uint64, bool) {
	return nil, 0, false
}

// TestRequestDeadline: once the per-request deadline expires inside a
// batch, remaining elements are answered with CodeTimeout envelopes
// instead of holding the admission slot for the full batch.
func TestRequestDeadline(t *testing.T) {
	s := &rpc.Server{Radar: &slowRadar{delay: 20 * time.Millisecond}, Limits: rpc.Limits{RequestTimeout: 60 * time.Millisecond}}
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 30
	var reqs []string
	for i := 0; i < n; i++ {
		reqs = append(reqs, fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":"daas_radarStatus","params":[]}`, i))
	}
	resp, err := http.Post(ts.URL, "application/json", strings.NewReader("["+strings.Join(reqs, ",")+"]"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envs []envelope
	if err := json.NewDecoder(resp.Body).Decode(&envs); err != nil {
		t.Fatal(err)
	}
	if len(envs) != n {
		t.Fatalf("got %d envelopes, want %d", len(envs), n)
	}
	var ok, timedOut int
	for _, e := range envs {
		switch {
		case e.Error == nil:
			ok++
		case e.Error.Code == rpc.CodeTimeout:
			timedOut++
		default:
			t.Errorf("unexpected error %+v", e.Error)
		}
	}
	if ok == 0 || timedOut == 0 {
		t.Errorf("ok=%d timedOut=%d, want both nonzero", ok, timedOut)
	}
	if last := envs[n-1]; last.Error == nil || last.Error.Code != rpc.CodeTimeout {
		t.Errorf("last element = %+v, want CodeTimeout", last.Error)
	}
}

// panicRadar panics on Status, standing in for any handler bug.
type panicRadar struct{}

func (panicRadar) Status() radar.Status { panic("radar exploded") }

func (panicRadar) Updates(after uint64, limit int) ([]radar.Update, uint64, bool) {
	return nil, 0, false
}

// TestPanicRecovery: a panicking handler yields a codeInternal envelope
// for that element, increments daas_rpc_server_panics_total, and the
// server keeps serving.
func TestPanicRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	s := &rpc.Server{Radar: panicRadar{}, Metrics: reg}
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, env := postOne(t, ts.URL, `{"jsonrpc":"2.0","id":1,"method":"daas_radarStatus","params":[]}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
	if env.Error == nil || env.Error.Code != -32603 || !strings.Contains(env.Error.Message, "internal error") {
		t.Errorf("error = %+v, want codeInternal", env.Error)
	}
	if s := reg.Snapshot().Find("daas_rpc_server_panics_total"); s == nil || s.Counter != 1 {
		t.Errorf("panics counter = %+v, want 1", s)
	}
	// Still alive: an unrelated request round-trips.
	if _, env := postOne(t, ts.URL, `{"jsonrpc":"2.0","id":2,"method":"daas_radarUpdates","params":[0,0]}`); env.JSONRPC != "2.0" {
		t.Errorf("post-panic request broken: %+v", env)
	}
}

// failingWriter refuses all writes, standing in for a client that hung
// up mid-response.
type failingWriter struct{ header http.Header }

func (w *failingWriter) Header() http.Header {
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}

func (w *failingWriter) Write([]byte) (int, error) { return 0, errors.New("broken pipe") }

func (w *failingWriter) WriteHeader(int) {}

// TestWriteErrorCounted is the satellite for dropped response writes:
// a failing ResponseWriter books daas_rpc_server_write_errors_total
// for both single and batch responses.
func TestWriteErrorCounted(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := newHardenedScreenServer(t, reg, rpc.Limits{})

	single := httptest.NewRequest(http.MethodPost, "/",
		strings.NewReader(`{"jsonrpc":"2.0","id":1,"method":"daas_screen","params":["0x0101010101010101010101010101010101010101"]}`))
	s.ServeHTTP(&failingWriter{}, single)

	batch := httptest.NewRequest(http.MethodPost, "/",
		strings.NewReader(`[{"jsonrpc":"2.0","id":2,"method":"daas_screen","params":["0x0101010101010101010101010101010101010101"]}]`))
	s.ServeHTTP(&failingWriter{}, batch)

	if got := reg.Snapshot().Find("daas_rpc_server_write_errors_total"); got == nil || got.Counter != 2 {
		t.Errorf("write errors = %+v, want 2", got)
	}
}

// laggingRadar reports a fixed head/cursor gap.
type laggingRadar struct{ head, cursor uint64 }

func (l laggingRadar) Status() radar.Status { return radar.Status{Head: l.head, Cursor: l.cursor} }

func (l laggingRadar) Updates(after uint64, limit int) ([]radar.Update, uint64, bool) {
	return nil, 0, false
}

// TestHealthEndpoints: /healthz is unconditional liveness; /readyz
// requires a compiled snapshot and a radar within ReadyMaxLag of the
// head.
func TestHealthEndpoints(t *testing.T) {
	get := func(t *testing.T, url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// No snapshot yet: alive but not ready.
	eng := screen.NewEngine(nil)
	s := &rpc.Server{Screen: eng, Limits: rpc.Limits{ReadyMaxLag: 8}}
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", code)
	}
	if code, body := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "no snapshot") {
		t.Errorf("readyz = %d %q, want 503 no-snapshot", code, body)
	}
	eng.Swap(screen.NewBuilder().Build())
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz after swap = %d, want 200", code)
	}

	// A radar far behind the head marks the server not-ready.
	s2 := &rpc.Server{Radar: laggingRadar{head: 1000, cursor: 10}, Limits: rpc.Limits{ReadyMaxLag: 8}}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	if code, body := get(t, ts2.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "lags head") {
		t.Errorf("lagging readyz = %d %q, want 503 lag reason", code, body)
	}
	s3 := &rpc.Server{Radar: laggingRadar{head: 1000, cursor: 996}, Limits: rpc.Limits{ReadyMaxLag: 8}}
	ts3 := httptest.NewServer(s3)
	defer ts3.Close()
	if code, _ := get(t, ts3.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("caught-up readyz = %d, want 200", code)
	}
}

// TestSlowLorisEvicted: a client that trickles its body is cut off at
// the request deadline instead of holding an admission slot forever.
func TestSlowLorisEvicted(t *testing.T) {
	s, ts := newHardenedScreenServer(t, nil, rpc.Limits{RequestTimeout: 150 * time.Millisecond})
	_ = s
	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	fmt.Fprintf(conn, "POST / HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n")
	_, _ = conn.Write([]byte(`{"jsonrpc":`)) // ... and never send the rest
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	n, _ := conn.Read(buf) // response or EOF — either way the server let go
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("server held the slow-loris connection for %v", elapsed)
	}
	_ = n
}

// TestSnapshotAgeStamped: verdicts from a fresh engine carry age 0;
// once the upstream stops confirming freshness the stamped age grows,
// and MarkFresh resets it.
func TestSnapshotAgeStamped(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps >1s to cross the whole-second staleness floor")
	}
	reg := obs.NewRegistry()
	b := screen.NewBuilder()
	b.Add(screen.Record{Address: screenAddr(1), Kind: screen.KindContract, Reason: screen.ReasonContract})
	eng := screen.NewEngine(reg)
	eng.Swap(b.Build())
	ts := httptest.NewServer(&rpc.Server{Screen: eng})
	defer ts.Close()
	client := rpc.NewClient(ts.URL)

	got, err := client.Screen(screenAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.SnapshotAgeSeconds != 0 {
		t.Errorf("fresh SnapshotAgeSeconds = %d, want 0", got.SnapshotAgeSeconds)
	}

	time.Sleep(1100 * time.Millisecond) // no MarkFresh: upstream "outage"
	got, err = client.Screen(screenAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.SnapshotAgeSeconds < 1 {
		t.Errorf("stale SnapshotAgeSeconds = %d, want >= 1", got.SnapshotAgeSeconds)
	}
	if s := reg.Snapshot().Find("daas_screen_stale_seconds"); s == nil || s.Gauge < 1 {
		t.Errorf("daas_screen_stale_seconds = %+v, want >= 1", s)
	}

	eng.MarkFresh()
	got, err = client.Screen(screenAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.SnapshotAgeSeconds != 0 {
		t.Errorf("SnapshotAgeSeconds after MarkFresh = %d, want 0", got.SnapshotAgeSeconds)
	}
}

// TestGracefulServe: cancelling the context drains and returns nil.
func TestGracefulServe(t *testing.T) {
	b := screen.NewBuilder()
	b.Add(screen.Record{Address: screenAddr(1), Kind: screen.KindContract, Reason: screen.ReasonContract})
	eng := screen.NewEngine(nil)
	eng.Swap(b.Build())
	s := &rpc.Server{Screen: eng}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	srv := s.HTTPServer(addr)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rpc.GracefulServe(ctx, srv, 2*time.Second) }()

	// Wait for the listener, then verify it serves.
	url := "http://" + addr
	var up bool
	for i := 0; i < 100; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			up = resp.StatusCode == http.StatusOK
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !up {
		t.Fatal("server never came up")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("GracefulServe = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("GracefulServe did not return after cancel")
	}
}

// TestRadarDeadlineWhileMutexHeld: the radar daemon serializes Status
// behind the same mutex as Step, and a catch-up Step can hold it for a
// long time. A status request must answer -32008 at its deadline
// instead of hanging on the mutex wait (which a context cannot
// preempt) until the step finishes.
func TestRadarDeadlineWhileMutexHeld(t *testing.T) {
	rb := &blockingRadar{started: make(chan struct{}, 1), release: make(chan struct{})}
	s := &rpc.Server{Radar: rb, Limits: rpc.Limits{RequestTimeout: 80 * time.Millisecond}}
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer close(rb.release) // let the abandoned Status goroutine finish

	start := time.Now()
	_, env := postOne(t, ts.URL, `{"jsonrpc":"2.0","id":1,"method":"daas_radarStatus","params":[]}`)
	if env.Error == nil || env.Error.Code != rpc.CodeTimeout {
		t.Fatalf("want code %d while the radar mutex is held, got %+v", rpc.CodeTimeout, env)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("deadline answer took %v despite an 80ms request timeout", elapsed)
	}
	<-rb.started // the call really was in flight when the deadline hit
}
