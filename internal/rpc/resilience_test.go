package rpc_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ethtypes"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/rpc"
)

// TestContextCancelAbortsInFlightRequest is the regression test for
// the context-plumbing gap: Transaction fetches used to go out via
// http.Client.Post with no request context, so the pipeline's
// cancel-on-first-error could only wait out the 30s client timeout. A
// cancelled context must now abort the in-flight HTTP exchange
// promptly.
func TestContextCancelAbortsInFlightRequest(t *testing.T) {
	release := make(chan struct{})
	var reached atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached.Store(true)
		<-release // hold the request open until the test ends
	}))
	defer srv.Close()
	defer close(release)

	client := rpc.NewClient(srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.TransactionContext(ctx, ethtypes.Hash{1})
		done <- err
	}()
	for !reached.Load() {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled fetch still in flight after 5s; context not plumbed to the HTTP request")
	}
}

// TestClientRetriesTransientServerErrors: a 503 from the gateway is
// retried under the policy and the call succeeds once the backend
// recovers; the retry metrics record the extra attempts.
func TestClientRetriesTransientServerErrors(t *testing.T) {
	client, done := newPair(t)
	defer done()

	var failures atomic.Int64
	failures.Store(2)
	inner := client.HTTPClient.Transport
	if inner == nil {
		inner = http.DefaultTransport
	}
	client.HTTPClient = &http.Client{Transport: roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if failures.Add(-1) >= 0 {
			return &http.Response{
				StatusCode: http.StatusServiceUnavailable,
				Body:       http.NoBody,
				Header:     http.Header{},
				Request:    req,
			}, nil
		}
		return inner.RoundTrip(req)
	})}
	reg := obs.NewRegistry()
	client.Retry = &retry.Policy{
		MaxAttempts: 4,
		Metrics:     reg,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	if _, err := client.BlockNumber(); err != nil {
		t.Fatalf("call did not survive two 503s: %v", err)
	}
	if n := reg.CounterVec("daas_retry_retries_total", "", "op").With("eth_blockNumber").Value(); n != 2 {
		t.Errorf("retries_total = %d, want 2", n)
	}
}

// TestClientDoesNotRetryApplicationErrors: a JSON-RPC error object is
// a definitive answer; retrying it would hammer the server with a
// request it already rejected for cause.
func TestClientDoesNotRetryApplicationErrors(t *testing.T) {
	client, done := newPair(t)
	defer done()
	reg := obs.NewRegistry()
	client.Retry = &retry.Policy{
		MaxAttempts: 4,
		Metrics:     reg,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	if _, err := client.Transaction(ethtypes.Hash{0xde, 0xad}); err == nil {
		t.Fatal("unknown hash lookup succeeded")
	}
	if n := reg.CounterVec("daas_retry_attempts_total", "", "op").With("eth_getTransactionByHash").Value(); n != 1 {
		t.Errorf("attempts_total = %d, want 1 (no retries of an application error)", n)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }
