package rpc_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/ethtypes"
)

// postRaw sends one raw JSON-RPC request body and decodes the envelope.
func postRaw(t *testing.T, url, body string) (json.RawMessage, *struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Result json.RawMessage `json:"result"`
		Error  *struct {
			Code    int    `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Result, out.Error
}

// TestScreenBatchEmptyArray: an empty address array is a valid request
// answered with a flat empty array, not null and not an error.
func TestScreenBatchEmptyArray(t *testing.T) {
	client, done := newScreenServer(t, nil)
	defer done()

	result, rpcErr := postRaw(t, client.URL, `{"jsonrpc":"2.0","id":1,"method":"daas_screenBatch","params":[]}`)
	if rpcErr != nil {
		t.Fatalf("empty batch errored: %+v", rpcErr)
	}
	if string(result) != "[]" {
		t.Errorf("empty batch result = %s, want []", result)
	}
}

// TestScreenBatchDuplicates: repeated addresses each get their own
// verdict slot, in input order, with identical verdicts per occurrence.
func TestScreenBatchDuplicates(t *testing.T) {
	client, done := newScreenServer(t, nil)
	defer done()

	addrs := []ethtypes.Address{screenAddr(1), screenAddr(1), screenAddr(9), screenAddr(2), screenAddr(1)}
	results, err := client.ScreenBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(addrs) {
		t.Fatalf("got %d results for %d addresses", len(results), len(addrs))
	}
	for i, r := range results {
		if r.Address != addrs[i] {
			t.Errorf("result %d address = %s, want %s", i, r.Address, addrs[i])
		}
	}
	if results[0] != results[1] || results[0] != results[4] {
		t.Errorf("duplicate occurrences got different verdicts: %+v / %+v / %+v",
			results[0], results[1], results[4])
	}
	if !results[0].Listed || results[2].Listed || !results[3].Listed {
		t.Errorf("verdicts wrong: %+v", results)
	}
}

// TestScreenBatchOversized: one request past the server cap earns
// invalid-params; exactly at the cap it succeeds.
func TestScreenBatchOversized(t *testing.T) {
	client, done := newScreenServer(t, nil)
	defer done()

	build := func(n int) string {
		var sb strings.Builder
		sb.WriteString(`{"jsonrpc":"2.0","id":1,"method":"daas_screenBatch","params":[`)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `"%s"`, screenAddr(byte(i)).Hex())
		}
		sb.WriteString(`]}`)
		return sb.String()
	}

	if _, rpcErr := postRaw(t, client.URL, build(4096)); rpcErr != nil {
		t.Errorf("batch at the cap errored: %+v", rpcErr)
	}
	_, rpcErr := postRaw(t, client.URL, build(4097))
	if rpcErr == nil {
		t.Fatal("batch of 4097 succeeded, want invalid params")
	}
	if rpcErr.Code != -32602 || !strings.Contains(rpcErr.Message, "4097") {
		t.Errorf("oversized batch error = %+v, want code -32602 naming the size", rpcErr)
	}
}

// TestScreenBatchClientChunks: the client splits a workload past the
// per-request cap into multiple requests and stitches the results back
// in input order.
func TestScreenBatchClientChunks(t *testing.T) {
	client, done := newScreenServer(t, nil)
	defer done()

	n := 4100
	addrs := make([]ethtypes.Address, n)
	for i := range addrs {
		addrs[i] = screenAddr(byte(i % 251))
	}
	results, err := client.ScreenBatch(addrs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results for %d addresses", len(results), n)
	}
	for _, i := range []int{0, 4095, 4096, n - 1} {
		if results[i].Address != addrs[i] {
			t.Errorf("result %d address = %s, want %s (chunk stitching broke order)", i, results[i].Address, addrs[i])
		}
		wantListed := addrs[i] == screenAddr(1) || addrs[i] == screenAddr(2)
		if results[i].Listed != wantListed {
			t.Errorf("result %d listed = %v, want %v", i, results[i].Listed, wantListed)
		}
	}
}

// TestScreenBatchMalformedAddress: a bad address fails the whole batch
// with invalid-params naming the offending index.
func TestScreenBatchMalformedAddress(t *testing.T) {
	client, done := newScreenServer(t, nil)
	defer done()

	body := `{"jsonrpc":"2.0","id":1,"method":"daas_screenBatch","params":["` +
		screenAddr(1).Hex() + `","0xnope"]}`
	_, rpcErr := postRaw(t, client.URL, body)
	if rpcErr == nil {
		t.Fatal("malformed address succeeded")
	}
	if rpcErr.Code != -32602 || !strings.Contains(rpcErr.Message, "address 1") {
		t.Errorf("error = %+v, want code -32602 naming address 1", rpcErr)
	}
}

// TestScreenBatchOrderContract: the wire result is one flat array of
// verdict objects, position i answering input i — mixed listed and
// clean, unsorted.
func TestScreenBatchOrderContract(t *testing.T) {
	client, done := newScreenServer(t, nil)
	defer done()

	addrs := []ethtypes.Address{screenAddr(2), screenAddr(9), screenAddr(1), screenAddr(3)}
	params := make([]string, len(addrs))
	for i, a := range addrs {
		params[i] = a.Hex()
	}
	body, _ := json.Marshal(map[string]any{
		"jsonrpc": "2.0", "id": 1, "method": "daas_screenBatch", "params": params,
	})
	result, rpcErr := postRaw(t, client.URL, string(body))
	if rpcErr != nil {
		t.Fatal(rpcErr)
	}
	var flat []struct {
		Address string `json:"address"`
		Listed  bool   `json:"listed"`
	}
	if err := json.Unmarshal(result, &flat); err != nil {
		t.Fatalf("result is not a flat verdict array: %v (%s)", err, result)
	}
	wantListed := []bool{true, false, true, false}
	for i := range addrs {
		if !strings.EqualFold(flat[i].Address, addrs[i].Hex()) {
			t.Errorf("verdict %d address = %s, want %s", i, flat[i].Address, addrs[i].Hex())
		}
		if flat[i].Listed != wantListed[i] {
			t.Errorf("verdict %d listed = %v, want %v", i, flat[i].Listed, wantListed[i])
		}
	}
}

// TestNilChainServerErrors: every chain-backed method on a
// screening-only server (nil Chain) answers with a clean internal
// error instead of a nil-pointer crash.
func TestNilChainServerErrors(t *testing.T) {
	client, done := newScreenServer(t, nil)
	defer done()

	calls := map[string]string{
		"eth_blockNumber":          `[]`,
		"eth_getBlockByNumber":     `[0]`,
		"eth_getTransactionByHash": `["0x` + strings.Repeat("11", 32) + `"]`,
		"repro_getReceipt":         `["0x` + strings.Repeat("11", 32) + `"]`,
		"eth_getBalance":           `["` + screenAddr(1).Hex() + `"]`,
		"eth_getCode":              `["` + screenAddr(1).Hex() + `"]`,
		"eth_call":                 `["` + screenAddr(1).Hex() + `","0x"]`,
		"repro_getStorageAt":       `["` + screenAddr(1).Hex() + `","0x` + strings.Repeat("00", 32) + `"]`,
		"repro_isContract":         `["` + screenAddr(1).Hex() + `"]`,
		"repro_transactionsOf":     `["` + screenAddr(1).Hex() + `"]`,
		"repro_getLogs":            `{"fromBlock":0,"toBlock":1}`,
	}
	for method, params := range calls {
		body := `{"jsonrpc":"2.0","id":1,"method":"` + method + `","params":` + params + `}`
		_, rpcErr := postRaw(t, client.URL, body)
		if rpcErr == nil {
			t.Errorf("%s succeeded on a chainless server", method)
			continue
		}
		if rpcErr.Code != -32603 || !strings.Contains(rpcErr.Message, "needs a chain backend") {
			t.Errorf("%s error = %+v, want internal error naming the missing backend", method, rpcErr)
		}
	}

	// repro_labels and the daas_* methods stay serviceable without a
	// chain.
	if _, rpcErr := postRaw(t, client.URL, `{"jsonrpc":"2.0","id":1,"method":"repro_labels","params":[]}`); rpcErr != nil {
		t.Errorf("repro_labels errored on a chainless server: %+v", rpcErr)
	}
	if _, err := client.Screen(screenAddr(1)); err != nil {
		t.Errorf("daas_screen errored on a chainless server: %v", err)
	}
}
