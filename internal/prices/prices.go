// Package prices provides the deterministic price oracle used to value
// stolen assets in USD. The paper reports every loss and profit figure
// in dollars at theft time; this oracle substitutes for the market-data
// feed with a smooth synthetic ETH/USD curve spanning the study window
// (March 2023 – April 2025) plus per-token quotes.
package prices

import (
	"math"
	"math/big"
	"sync"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
)

// Quote describes a registered ERC-20 or ERC-721 asset.
type Quote struct {
	Symbol   string
	Decimals int // token decimals; ERC-721 uses 0 (price is per item)
	USD      float64
}

// Oracle values assets in USD. The zero value is unusable; call New.
type Oracle struct {
	mu     sync.RWMutex
	quotes map[ethtypes.Address]Quote
}

// Study window anchors for the synthetic ETH curve.
var (
	curveStart = time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC)
)

// New returns an oracle with no token registrations.
func New() *Oracle {
	return &Oracle{quotes: make(map[ethtypes.Address]Quote)}
}

// Register installs or replaces a token quote.
func (o *Oracle) Register(token ethtypes.Address, q Quote) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.quotes[token] = q
}

// QuoteOf returns the registered quote for a token.
func (o *Oracle) QuoteOf(token ethtypes.Address) (Quote, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	q, ok := o.quotes[token]
	return q, ok
}

// ETHUSD returns the synthetic ETH price at time t: a slow ramp from
// ~$1,700 (March 2023) toward ~$3,400 (April 2025) with a gentle
// seasonal swing — enough realism that identical token amounts stolen a
// year apart value differently, as in the paper's dataset.
func (o *Oracle) ETHUSD(t time.Time) float64 {
	days := t.Sub(curveStart).Hours() / 24
	if days < 0 {
		days = 0
	}
	ramp := 1700 + days*2.2                     // ≈ +$800/year
	swing := 180 * math.Sin(days*2*math.Pi/365) // annual cycle
	return ramp + swing
}

// TokenUSD returns the USD price of one whole token at t. Unregistered
// tokens are worthless.
func (o *Oracle) TokenUSD(token ethtypes.Address, t time.Time) float64 {
	q, ok := o.QuoteOf(token)
	if !ok {
		return 0
	}
	return q.USD
}

// ValueUSD converts an asset amount to USD at time t. ETH amounts are
// wei; ERC-20 amounts are base units scaled by the registered decimals;
// ERC-721 amounts count items.
func (o *Oracle) ValueUSD(asset chain.Asset, amount ethtypes.Wei, t time.Time) float64 {
	switch asset.Kind {
	case chain.AssetETH:
		return amount.EtherFloat() * o.ETHUSD(t)
	case chain.AssetERC20:
		q, ok := o.QuoteOf(asset.Token)
		if !ok {
			return 0
		}
		return amount.Float64() / math.Pow10(q.Decimals) * q.USD
	case chain.AssetERC721:
		q, ok := o.QuoteOf(asset.Token)
		if !ok {
			return 0
		}
		return amount.Float64() * q.USD
	default:
		return 0
	}
}

// EtherForUSD returns the wei amount worth usd at time t — the inverse
// conversion the world generator uses to fund victims.
func (o *Oracle) EtherForUSD(usd float64, t time.Time) ethtypes.Wei {
	eth := usd / o.ETHUSD(t)
	// Work in gwei to keep precision without big floats.
	gwei := int64(eth * 1e9)
	if gwei < 0 {
		gwei = 0
	}
	return ethtypes.GWei(gwei)
}

// TokensForUSD returns the base-unit amount of token worth usd. The
// computation is exact in micro-USD so 18-decimal tokens cannot
// overflow.
func (o *Oracle) TokensForUSD(token ethtypes.Address, usd float64) ethtypes.Wei {
	q, ok := o.QuoteOf(token)
	if !ok || q.USD <= 0 || usd <= 0 {
		return ethtypes.Wei{}
	}
	microUSD := big.NewInt(int64(usd * 1e6))
	priceMicro := big.NewInt(int64(q.USD * 1e6))
	out := new(big.Int).Mul(microUSD, new(big.Int).Exp(big.NewInt(10), big.NewInt(int64(q.Decimals)), nil))
	out.Div(out, priceMicro)
	return ethtypes.WeiFromBig(out)
}
