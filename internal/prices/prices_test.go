package prices

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/chain"
	"repro/internal/ethtypes"
)

var usdc = ethtypes.Addr("0xa0b86991c6218b36c1d19d4a2e9eb0ce3606eb48")
var bayc = ethtypes.Addr("0xbc4ca0eda7647a8ab7c2061c2e118a18a936f13d")

func mid2023() time.Time { return time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC) }

func newOracle() *Oracle {
	o := New()
	o.Register(usdc, Quote{Symbol: "USDC", Decimals: 6, USD: 1})
	o.Register(bayc, Quote{Symbol: "BAYC", Decimals: 0, USD: 12000})
	return o
}

func TestETHCurveShape(t *testing.T) {
	o := New()
	early := o.ETHUSD(time.Date(2023, 3, 1, 0, 0, 0, 0, time.UTC))
	late := o.ETHUSD(time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC))
	if early < 1200 || early > 2200 {
		t.Errorf("early price $%.0f out of band", early)
	}
	if late <= early {
		t.Errorf("curve not rising: $%.0f -> $%.0f", early, late)
	}
	if late < 2500 || late > 4500 {
		t.Errorf("late price $%.0f out of band", late)
	}
}

func TestValueUSD(t *testing.T) {
	o := newOracle()
	ts := mid2023()
	// 1 ETH values at the curve price.
	got := o.ValueUSD(chain.ETHAsset, ethtypes.Ether(1), ts)
	want := o.ETHUSD(ts)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("1 ETH = $%.2f, want $%.2f", got, want)
	}
	// 250 USDC (6 decimals).
	got = o.ValueUSD(chain.Asset{Kind: chain.AssetERC20, Token: usdc}, ethtypes.NewWei(250_000_000), ts)
	if math.Abs(got-250) > 0.01 {
		t.Errorf("250 USDC = $%.2f", got)
	}
	// 2 BAYC.
	got = o.ValueUSD(chain.Asset{Kind: chain.AssetERC721, Token: bayc}, ethtypes.NewWei(2), ts)
	if got != 24000 {
		t.Errorf("2 BAYC = $%.2f", got)
	}
	// Unregistered token is worthless.
	if got := o.ValueUSD(chain.Asset{Kind: chain.AssetERC20, Token: bayc2()}, ethtypes.NewWei(1), ts); got != 0 {
		t.Errorf("unregistered token = $%.2f", got)
	}
}

func bayc2() ethtypes.Address {
	return ethtypes.Addr("0x0000000000000000000000000000000000000bad")
}

func TestEtherForUSDInverts(t *testing.T) {
	o := newOracle()
	ts := mid2023()
	wei := o.EtherForUSD(5000, ts)
	back := o.ValueUSD(chain.ETHAsset, wei, ts)
	if math.Abs(back-5000)/5000 > 0.001 {
		t.Errorf("round trip $5000 -> %s wei -> $%.2f", wei, back)
	}
}

func TestTokensForUSDLargeDecimals(t *testing.T) {
	o := New()
	weth := bayc2()
	o.Register(weth, Quote{Symbol: "stWETH", Decimals: 18, USD: 2400})
	// $30,000 at $2,400 = 12.5 tokens = 1.25e19 base units; must not
	// overflow int64.
	amt := o.TokensForUSD(weth, 30_000)
	back := o.ValueUSD(chain.Asset{Kind: chain.AssetERC20, Token: weth}, amt, mid2023())
	if math.Abs(back-30_000)/30_000 > 0.001 {
		t.Errorf("$30k -> %s units -> $%.2f", amt, back)
	}
	if o.TokensForUSD(weth, -5).Sign() != 0 {
		t.Error("negative USD produced tokens")
	}
	if o.TokensForUSD(usdc, 10).Sign() != 0 {
		t.Error("unregistered token produced units")
	}
}

// Property: USD -> token units -> USD round-trips within 0.5% for
// positive amounts.
func TestQuickTokenRoundTrip(t *testing.T) {
	o := newOracle()
	ts := mid2023()
	f := func(cents uint32) bool {
		usd := float64(cents%10_000_000)/100 + 1 // $1 .. $100k
		amt := o.TokensForUSD(usdc, usd)
		back := o.ValueUSD(chain.Asset{Kind: chain.AssetERC20, Token: usdc}, amt, ts)
		return math.Abs(back-usd)/usd < 0.005
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuoteOf(t *testing.T) {
	o := newOracle()
	q, ok := o.QuoteOf(usdc)
	if !ok || q.Symbol != "USDC" || q.Decimals != 6 {
		t.Errorf("QuoteOf = %+v, %v", q, ok)
	}
	if _, ok := o.QuoteOf(bayc2()); ok {
		t.Error("QuoteOf unregistered succeeded")
	}
}
