// Package walletguard implements the wallet-side countermeasures the
// paper proposes in §9: before a user signs a transaction, simulate it
// and alert when it would transfer or approve tokens to accounts on a
// DaaS blacklist, when it would drain the account, or when the
// originating website is a known drainer deployment.
//
// The blacklist is built straight from a recovered dataset, closing
// the loop from measurement (§5–§7) to protection (§9).
//
// Storage is an internal/screen snapshot: mutations (BlockAddress,
// LoadDataset, BlockDomain, LoadSnapshot) go through a mutex-guarded
// builder and publish a freshly compiled immutable snapshot with one
// atomic store, while Screen and CheckDomain read lock-free — safe for
// unlimited concurrent screening during a dataset reload, and sharing
// one source of truth with the serving-scale screening engine.
package walletguard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/screen"
)

// Severity grades a warning.
type Severity int

// Severities, ordered.
const (
	// SeverityNotice flags unusual but not certainly malicious behavior.
	SeverityNotice Severity = iota
	// SeverityWarning flags probable phishing.
	SeverityWarning
	// SeverityCritical flags certain interaction with a blacklisted
	// DaaS account.
	SeverityCritical
)

func (s Severity) String() string {
	switch s {
	case SeverityNotice:
		return "notice"
	case SeverityWarning:
		return "warning"
	case SeverityCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// Warning is one finding about a pending transaction.
type Warning struct {
	Severity Severity
	Code     string // stable identifier, e.g. "transfer-to-blacklist"
	Detail   string
}

// Verdict is the guard's assessment of a pending transaction.
type Verdict struct {
	// Block recommends refusing the signature.
	Block    bool
	Warnings []Warning
	// Simulated is the dry-run receipt backing the findings.
	Simulated *chain.Receipt
}

// Guard screens pending transactions.
type Guard struct {
	chain *chain.Chain
	// mu guards builder; the published snapshot is read lock-free.
	mu      sync.Mutex
	builder *screen.Builder
	snap    atomic.Pointer[screen.Snapshot]
	// DrainThreshold is the fraction of the sender's ETH balance whose
	// outflow triggers the drain notice (default 0.95).
	DrainThreshold float64
}

// New returns a guard over the given chain with an empty blacklist.
func New(c *chain.Chain) *Guard {
	return &Guard{
		chain:          c,
		builder:        screen.NewBuilder(),
		DrainThreshold: 0.95,
	}
}

// publishLocked compiles the builder state and swaps it in; callers
// hold mu.
func (g *Guard) publishLocked() {
	g.snap.Store(g.builder.Build())
}

// BlockAddress adds one account to the blacklist with a reason tag.
func (g *Guard) BlockAddress(a ethtypes.Address, reason string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.builder.Add(screen.Record{Address: a, Kind: screen.KindManual, Reason: reason})
	g.publishLocked()
}

// LoadDataset blacklists every account of a recovered DaaS dataset —
// the reporting flow of §8.1 (wallets like MetaMask "block any user
// transactions interacting with them"). The new entries become visible
// in one atomic snapshot swap; concurrent Screen calls see either the
// whole dataset or none of it, never a partial load.
func (g *Guard) LoadDataset(ds *core.Dataset) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, rec := range ds.SortedContracts() {
		g.builder.Add(screen.Record{Address: rec.Address, Kind: screen.KindContract, Reason: screen.ReasonContract, StaticFlagged: rec.StaticFlagged})
	}
	for _, rec := range ds.SortedOperators() {
		g.builder.Add(screen.Record{Address: rec.Address, Kind: screen.KindOperator, Reason: screen.ReasonOperator})
	}
	for _, rec := range ds.SortedAffiliates() {
		g.builder.Add(screen.Record{Address: rec.Address, Kind: screen.KindAffiliate, Reason: screen.ReasonAffiliate})
	}
	g.publishLocked()
}

// LoadSnapshot adopts a compiled screening snapshot (screen.Compile
// output) wholesale: the serving engine and the wallet guard then
// consult literally the same record set. Entries added through
// BlockAddress/BlockDomain afterwards layer on top.
func (g *Guard) LoadSnapshot(s *screen.Snapshot) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.builder = screen.NewBuilder()
	for _, rec := range s.Records() {
		g.builder.Add(rec)
	}
	for _, d := range s.Domains() {
		g.builder.AddDomain(d)
	}
	g.publishLocked()
}

// BlockDomain marks a website domain as a confirmed drainer deployment
// (the §8.2 detector's output feeds this). Domains are normalized via
// screen.NormalizeDomain, so "Evil.Example.", "evil.example:443", and
// "evil.example" all land on one entry.
func (g *Guard) BlockDomain(domain string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.builder.AddDomain(domain)
	g.publishLocked()
}

// BlacklistSize reports the number of blocked accounts.
func (g *Guard) BlacklistSize() int { return g.snap.Load().Len() }

// CheckDomain screens the website asking for the signature.
func (g *Guard) CheckDomain(domain string) (Warning, bool) {
	if g.snap.Load().LookupDomain(domain) {
		return Warning{
			Severity: SeverityCritical,
			Code:     "drainer-website",
			Detail:   fmt.Sprintf("website %s is a confirmed drainer deployment", domain),
		}, true
	}
	return Warning{}, false
}

// Screen simulates a pending transaction and returns the verdict. The
// optional originDomain is the website that requested the signature.
// The snapshot is loaded once at entry, so one verdict is always
// judged against a single consistent blacklist even while a reload is
// swapping snapshots underneath.
func (g *Guard) Screen(tx *chain.Transaction, originDomain string) Verdict {
	snap := g.snap.Load()
	lookup := func(a ethtypes.Address) (string, bool) {
		rec, ok := snap.Lookup(a)
		return rec.Reason, ok
	}
	v := Verdict{}
	if originDomain != "" && snap.LookupDomain(originDomain) {
		v.Warnings = append(v.Warnings, Warning{
			Severity: SeverityCritical,
			Code:     "drainer-website",
			Detail:   fmt.Sprintf("website %s is a confirmed drainer deployment", originDomain),
		})
		v.Block = true
	}
	// Direct recipient check (cheap, before simulation).
	if tx.To != nil {
		if reason, bad := lookup(*tx.To); bad {
			v.Warnings = append(v.Warnings, Warning{
				Severity: SeverityCritical,
				Code:     "recipient-blacklisted",
				Detail:   fmt.Sprintf("recipient %s is a %s", tx.To.Short(), reason),
			})
			v.Block = true
		}
	}

	// Simulation: what would actually move?
	r := g.chain.Simulate(tx)
	v.Simulated = r
	if !r.Status {
		v.Warnings = append(v.Warnings, Warning{
			Severity: SeverityNotice,
			Code:     "simulation-reverted",
			Detail:   "transaction would revert: " + r.Err,
		})
		sortWarnings(v.Warnings)
		return v
	}

	outflow := ethtypes.Wei{}
	for _, tr := range r.Transfers {
		if reason, bad := lookup(tr.To); bad && tr.From == tx.From {
			v.Warnings = append(v.Warnings, Warning{
				Severity: SeverityCritical,
				Code:     "transfer-to-blacklist",
				Detail: fmt.Sprintf("would send %s %s to %s (%s)",
					tr.Amount, tr.Asset.Kind, tr.To.Short(), reason),
			})
			v.Block = true
		}
		if tr.From == tx.From && tr.Asset.Kind == chain.AssetETH {
			outflow = outflow.Add(tr.Amount)
		}
	}
	for _, ap := range r.Approvals {
		if ap.Owner != tx.From {
			continue
		}
		if reason, bad := lookup(ap.Spender); bad {
			v.Warnings = append(v.Warnings, Warning{
				Severity: SeverityCritical,
				Code:     "approval-to-blacklist",
				Detail: fmt.Sprintf("would approve %s to spend your %s tokens (%s)",
					ap.Spender.Short(), ap.Kind, reason),
			})
			v.Block = true
		} else if ap.All {
			v.Warnings = append(v.Warnings, Warning{
				Severity: SeverityWarning,
				Code:     "approval-for-all",
				Detail:   fmt.Sprintf("would grant %s control of your entire collection", ap.Spender.Short()),
			})
		}
	}

	// Drain heuristic: the transaction moves essentially the whole ETH
	// balance out (the defining trait of wallet drainers, §9).
	balance := g.chain.BalanceOf(tx.From)
	if balance.Sign() > 0 && outflow.Sign() > 0 {
		threshold := balance.MulDiv(int64(g.DrainThreshold*1000), 1000)
		if outflow.Cmp(threshold) >= 0 {
			v.Warnings = append(v.Warnings, Warning{
				Severity: SeverityWarning,
				Code:     "account-drain",
				Detail:   fmt.Sprintf("would move %s of your %s wei balance", outflow, balance),
			})
		}
	}
	sortWarnings(v.Warnings)
	return v
}

// sortWarnings orders findings most severe first, then by code, so
// verdicts are deterministic.
func sortWarnings(ws []Warning) {
	sort.SliceStable(ws, func(i, j int) bool {
		if ws[i].Severity != ws[j].Severity {
			return ws[i].Severity > ws[j].Severity
		}
		return ws[i].Code < ws[j].Code
	})
}
