package walletguard_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/walletguard"
	"repro/internal/worldgen"
)

var (
	operator  = ethtypes.Addr("0x0e00000000000000000000000000000000000001")
	affiliate = ethtypes.Addr("0xaf00000000000000000000000000000000000002")
	victim    = ethtypes.Addr("0x1c00000000000000000000000000000000000003")
	friend    = ethtypes.Addr("0xf100000000000000000000000000000000000004")
)

func ts() time.Time { return time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC) }

// setup deploys one profit-sharing contract and returns chain, guard,
// and the contract address (blacklisted).
func setup(t *testing.T) (*chain.Chain, *walletguard.Guard, ethtypes.Address) {
	t.Helper()
	c := chain.New(ts())
	c.Fund(victim, ethtypes.Ether(10))
	c.Fund(operator, ethtypes.Ether(1))
	initcode, err := contracts.Deploy(contracts.Spec{
		Style: contracts.StyleClaim, Operator: operator,
		OperatorPerMille: 200, Authorized: operator,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, rs := c.Mine(ts(), &chain.Transaction{From: operator, Data: initcode})
	contractAddr := rs[0].ContractAddress

	g := walletguard.New(c)
	g.BlockAddress(contractAddr, "daas profit-sharing contract")
	g.BlockAddress(operator, "daas operator account")
	g.BlockDomain("uniswap-claim.com")
	return c, g, contractAddr
}

func to(a ethtypes.Address) *ethtypes.Address { return &a }

func TestScreenBlocksPhishingClaim(t *testing.T) {
	_, g, contractAddr := setup(t)
	data, _ := contracts.ClaimData("Claim(address)", affiliate)
	v := g.Screen(&chain.Transaction{
		From: victim, To: to(contractAddr), Value: ethtypes.Ether(10), Data: data,
	}, "")
	if !v.Block {
		t.Fatal("phishing claim not blocked")
	}
	codes := codeSet(v)
	for _, want := range []string{"recipient-blacklisted", "transfer-to-blacklist", "account-drain"} {
		if !codes[want] {
			t.Errorf("missing warning %s; got %v", want, codes)
		}
	}
	// The simulation must not have moved real funds.
	if g.BlacklistSize() != 2 {
		t.Errorf("blacklist size = %d", g.BlacklistSize())
	}
}

func TestScreenSimulationDoesNotCommit(t *testing.T) {
	c, g, contractAddr := setup(t)
	before := c.BalanceOf(victim)
	data, _ := contracts.ClaimData("Claim(address)", affiliate)
	g.Screen(&chain.Transaction{
		From: victim, To: to(contractAddr), Value: ethtypes.Ether(9), Data: data,
	}, "")
	if c.BalanceOf(victim).Cmp(before) != 0 {
		t.Error("Screen committed state changes")
	}
	if c.BalanceOf(operator).Cmp(ethtypes.Ether(1)) != 0 {
		t.Error("operator balance changed by simulation")
	}
}

func TestScreenAllowsBenignTransfer(t *testing.T) {
	_, g, _ := setup(t)
	v := g.Screen(&chain.Transaction{
		From: victim, To: to(friend), Value: ethtypes.Ether(1),
	}, "myfriend.example")
	if v.Block {
		t.Errorf("benign transfer blocked: %+v", v.Warnings)
	}
	// Partial transfers don't trigger the drain notice.
	for _, w := range v.Warnings {
		if w.Code == "account-drain" {
			t.Error("1-of-10 ETH transfer flagged as drain")
		}
	}
}

func TestScreenDrainNoticeWithoutBlacklist(t *testing.T) {
	_, g, _ := setup(t)
	// Sending the whole balance to an unknown account: notice, not
	// block.
	v := g.Screen(&chain.Transaction{
		From: victim, To: to(friend), Value: ethtypes.Ether(10),
	}, "")
	if v.Block {
		t.Error("full self-transfer to unlisted account hard-blocked")
	}
	if !codeSet(v)["account-drain"] {
		t.Errorf("drain notice missing: %+v", v.Warnings)
	}
}

func TestScreenPhishingDomain(t *testing.T) {
	_, g, _ := setup(t)
	v := g.Screen(&chain.Transaction{
		From: victim, To: to(friend), Value: ethtypes.Ether(1),
	}, "UNISWAP-CLAIM.com")
	if !v.Block || !codeSet(v)["drainer-website"] {
		t.Errorf("phishing origin not blocked: %+v", v.Warnings)
	}
}

func TestScreenRevertedSimulation(t *testing.T) {
	_, g, contractAddr := setup(t)
	// Call multicall unauthorized: reverts in simulation.
	mc, _ := contracts.MulticallData([]contracts.MulticallStep{{Target: friend}})
	v := g.Screen(&chain.Transaction{From: victim, To: to(contractAddr), Data: mc}, "")
	if !codeSet(v)["simulation-reverted"] {
		t.Errorf("revert not surfaced: %+v", v.Warnings)
	}
	// Recipient is still blacklisted, so the verdict blocks regardless.
	if !v.Block {
		t.Error("blacklisted recipient not blocked on revert")
	}
}

func TestLoadDatasetBlocksRecoveredAccounts(t *testing.T) {
	w, err := worldgen.Generate(worldgen.TestConfig(99))
	if err != nil {
		t.Fatal(err)
	}
	p := &core.Pipeline{Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels}
	ds, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := walletguard.New(w.Chain)
	g.LoadDataset(ds)
	if g.BlacklistSize() != ds.AccountCount() {
		t.Errorf("blacklist %d != dataset accounts %d", g.BlacklistSize(), ds.AccountCount())
	}

	// Re-screening a planted phishing transaction must block it.
	checked := 0
	for h, inc := range w.Truth.ProfitTxs {
		tx, err := w.Chain.Transaction(h)
		if err != nil {
			t.Fatal(err)
		}
		if _, isVictim := w.Truth.VictimLossUSD[tx.From]; !isVictim {
			continue // operator-originated (multicall / NFT proceeds)
		}
		v := g.Screen(tx, "")
		if !v.Block {
			t.Errorf("planted phishing tx %s not blocked (incident kind %v)", h, inc.Kind)
		}
		checked++
		if checked >= 25 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no victim-signed phishing txs screened")
	}
}

func TestWarningOrderingDeterministic(t *testing.T) {
	_, g, contractAddr := setup(t)
	data, _ := contracts.ClaimData("Claim(address)", affiliate)
	tx := &chain.Transaction{From: victim, To: to(contractAddr), Value: ethtypes.Ether(9), Data: data}
	a := g.Screen(tx, "uniswap-claim.com")
	b := g.Screen(tx, "uniswap-claim.com")
	if len(a.Warnings) != len(b.Warnings) {
		t.Fatal("verdicts differ across runs")
	}
	for i := range a.Warnings {
		if a.Warnings[i].Code != b.Warnings[i].Code {
			t.Fatal("warning order unstable")
		}
		if i > 0 && a.Warnings[i].Severity > a.Warnings[i-1].Severity {
			t.Fatal("warnings not sorted by severity")
		}
	}
}

// TestGuardConcurrentReload screens while dataset reloads swap the
// snapshot underneath; under -race this is the regression gate for the
// old read/write race on the blacklist maps. Every reload publishes
// the same logical blacklist, so verdicts must never waver.
func TestGuardConcurrentReload(t *testing.T) {
	_, g, contractAddr := setup(t)
	ds := core.NewDataset()
	ds.Contracts[contractAddr] = &core.ContractRecord{Address: contractAddr, FirstSeen: ts(), LastSeen: ts(), StaticFlagged: true}
	ds.Operators[operator] = &core.AccountRecord{Address: operator, FirstSeen: ts(), LastSeen: ts()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			g.LoadDataset(ds)
			g.BlockDomain("uniswap-claim.com")
		}
	}()
	data, _ := contracts.ClaimData("Claim(address)", affiliate)
	tx := &chain.Transaction{From: victim, To: to(contractAddr), Value: ethtypes.Ether(9), Data: data}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if v := g.Screen(tx, "uniswap-claim.com"); !v.Block {
					t.Error("phishing claim passed during reload")
					return
				}
				if _, hit := g.CheckDomain("uniswap-claim.com"); !hit {
					t.Error("blocked domain missed during reload")
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
	// setup blocked contract+operator manually; the dataset re-adds the
	// same two addresses, so the final blacklist still holds exactly
	// them.
	if g.BlacklistSize() != 2 {
		t.Errorf("blacklist size = %d, want 2", g.BlacklistSize())
	}
}

func TestSeverityString(t *testing.T) {
	if walletguard.SeverityCritical.String() != "critical" ||
		walletguard.SeverityWarning.String() != "warning" ||
		walletguard.SeverityNotice.String() != "notice" {
		t.Error("severity strings wrong")
	}
}

func codeSet(v walletguard.Verdict) map[string]bool {
	out := make(map[string]bool)
	for _, w := range v.Warnings {
		out[w.Code] = true
	}
	return out
}

var _ = strings.ToLower
