// Package website builds and serves the web half of the study:
// phishing sites embedding drainer toolkits (the Listing 2 layout) and
// benign sites, hosted over HTTP with path-based virtual hosting so
// the crawler and detector exercise real network fetches.
package website

import (
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/domains"
	"repro/internal/toolkit"
)

// Site is one website: its domain, role, and file tree.
type Site struct {
	Domain   string
	Phishing bool
	Family   string // drainer family for phishing sites
	// HTTPS records whether the site obtained a certificate (the paper
	// notes >70% of phishing sites use TLS; only these appear in CT).
	HTTPS bool
	// Files maps path ("index.html", "scripts/settings.js") to content.
	Files map[string]string
	// Issued is the certificate issuance time for HTTPS sites.
	Issued time.Time
}

// cdnRefs are the external script references of the Inferno HTML
// snippet (paper Listing 2); they stay remote and are never fetched by
// the crawler.
var cdnRefs = []string{
	"https://cdnjs.cloudflare.com/ajax/libs/ethers/5.6.9/ethers.umd.min.js",
	"https://cdn.jsdelivr.net/npm/merkletreejs@latest/merkletree.js",
	"https://cdn.jsdelivr.net/npm/sweetalert2@11",
}

// BuildPhishing assembles a phishing site for a family: a cloned
// project landing page with the drainer toolkit embedded.
func BuildPhishing(domain, family string, variant int, rng *rand.Rand) *Site {
	files := make(map[string]string)
	var scripts []string
	for _, name := range toolkit.FileLayout(family, rng) {
		path := "scripts/" + name
		if strings.HasSuffix(name, ".js") && strings.Count(name, "-") == 4 {
			path = name // Inferno ships the UUID bundle at the root
		}
		files[path] = toolkit.GenerateContent(family, variant)
		scripts = append(scripts, path)
	}
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html><html><head><title>")
	sb.WriteString(strings.Title(strings.Split(domain, ".")[0]))
	sb.WriteString(" | Claim Portal</title>\n")
	for _, cdn := range cdnRefs {
		fmt.Fprintf(&sb, "<script src=%q></script>\n", cdn)
	}
	for _, s := range scripts {
		fmt.Fprintf(&sb, "<script src=\"./%s\"></script>\n", s)
	}
	sb.WriteString("</head><body><h1>Connect your wallet to claim</h1>")
	sb.WriteString("<button onclick=\"sweep(window.ethereum)\">Claim now</button>")
	sb.WriteString("</body></html>")
	files["index.html"] = sb.String()
	return &Site{Domain: domain, Phishing: true, Family: family, Files: files}
}

// BuildBenign assembles an ordinary website.
func BuildBenign(domain string, rng *rand.Rand) *Site {
	files := make(map[string]string)
	files["scripts/main.js"] = fmt.Sprintf(
		"document.addEventListener('DOMContentLoaded',()=>{console.log('welcome to %s');});\n"+
			"function subscribe(e){fetch('/api/subscribe',{method:'POST'});}\n", domain)
	files["index.html"] = fmt.Sprintf(
		"<!DOCTYPE html><html><head><title>%s</title>\n"+
			"<script src=\"./scripts/main.js\"></script>\n"+
			"</head><body><h1>%s</h1><p>A perfectly ordinary website.</p></body></html>",
		domain, domain)
	return &Site{Domain: domain, Phishing: false, Files: files}
}

// FleetConfig sizes a generated website fleet.
type FleetConfig struct {
	Seed uint64
	// Phishing is the number of drainer-deployed sites.
	Phishing int
	// Benign is the number of ordinary sites with unsuspicious domains.
	Benign int
	// Bait is the number of benign sites whose domains match the
	// keyword filter anyway (forcing the crawl stage to discriminate).
	Bait int
	// HTTPSFraction is the share of phishing sites with certificates
	// (paper: >70%). Benign sites are always HTTPS.
	HTTPSFraction float64
	// Start seeds certificate issuance times.
	Start time.Time
}

// FamilyShare weights phishing site counts by family, roughly
// following the victim-activity mix of Table 2.
var FamilyShare = []struct {
	Family string
	Weight float64
}{
	{toolkit.FamilyAngel, 45},
	{toolkit.FamilyInferno, 38},
	{toolkit.FamilyPink, 9},
	{toolkit.FamilyAce, 5},
	{toolkit.FamilyVenom, 3},
}

// GenerateFleet builds the full site population.
func GenerateFleet(cfg FleetConfig) []*Site {
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xc0ffee))
	gen := domains.NewGenerator(cfg.Seed ^ 0xd0)
	if cfg.HTTPSFraction == 0 {
		cfg.HTTPSFraction = 0.75
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2023, 12, 1, 0, 0, 0, 0, time.UTC)
	}

	var cum []float64
	var acc float64
	for _, fs := range FamilyShare {
		acc += fs.Weight
		cum = append(cum, acc)
	}
	pickFamily := func() string {
		u := rng.Float64() * acc
		for i, c := range cum {
			if u <= c {
				return FamilyShare[i].Family
			}
		}
		return FamilyShare[0].Family
	}

	var sites []*Site
	seen := make(map[string]bool)
	fresh := func(make func() string) string {
		for {
			d := make()
			if !seen[d] {
				seen[d] = true
				return d
			}
		}
	}
	for i := 0; i < cfg.Phishing; i++ {
		site := BuildPhishing(fresh(gen.Phishing), pickFamily(), 1000+i, rng)
		site.HTTPS = rng.Float64() < cfg.HTTPSFraction
		site.Issued = cfg.Start.Add(time.Duration(rng.Int64N(int64(480 * 24 * time.Hour))))
		sites = append(sites, site)
	}
	for i := 0; i < cfg.Benign; i++ {
		site := BuildBenign(fresh(gen.Benign), rng)
		site.HTTPS = true
		site.Issued = cfg.Start.Add(time.Duration(rng.Int64N(int64(480 * 24 * time.Hour))))
		sites = append(sites, site)
	}
	for i := 0; i < cfg.Bait; i++ {
		site := BuildBenign(fresh(gen.BenignBait), rng)
		site.HTTPS = true
		site.Issued = cfg.Start.Add(time.Duration(rng.Int64N(int64(480 * 24 * time.Hour))))
		sites = append(sites, site)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].Issued.Before(sites[j].Issued) })
	return sites
}

// Host serves a fleet with path-based virtual hosting:
// GET /{domain}/{path} returns the site file. It implements
// http.Handler.
type Host struct {
	sites map[string]*Site
}

// NewHost indexes the fleet for serving.
func NewHost(sites []*Site) *Host {
	h := &Host{sites: make(map[string]*Site, len(sites))}
	for _, s := range sites {
		h.sites[s.Domain] = s
	}
	return h
}

// Lookup returns a hosted site by domain.
func (h *Host) Lookup(domain string) (*Site, bool) {
	s, ok := h.sites[domain]
	return s, ok
}

// ServeHTTP implements http.Handler.
func (h *Host) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	domain, rest, _ := strings.Cut(path, "/")
	site, ok := h.sites[domain]
	if !ok {
		http.NotFound(w, r)
		return
	}
	if rest == "" {
		rest = "index.html"
	}
	content, ok := site.Files[rest]
	if !ok {
		http.NotFound(w, r)
		return
	}
	if strings.HasSuffix(rest, ".html") {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
	} else if strings.HasSuffix(rest, ".js") {
		w.Header().Set("Content-Type", "application/javascript")
	}
	fmt.Fprint(w, content)
}
