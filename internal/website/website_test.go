package website

import (
	"io"
	"math/rand/v2"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/domains"
	"repro/internal/toolkit"
)

func TestBuildPhishingEmbedsToolkit(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	s := BuildPhishing("uniswap-claim.com", toolkit.FamilyAngel, 12, rng)
	index := s.Files["index.html"]
	if !strings.Contains(index, "scripts/settings.js") || !strings.Contains(index, "scripts/webchunk.js") {
		t.Errorf("index missing toolkit refs:\n%s", index)
	}
	if !strings.Contains(index, "ethers.umd.min.js") {
		t.Error("index missing Listing 2 CDN refs")
	}
	body := s.Files["scripts/settings.js"]
	if !strings.Contains(body, "drainToken") {
		t.Error("toolkit body missing drainer code")
	}
}

func TestBuildPhishingInfernoRootBundle(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	s := BuildPhishing("pepe-airdrop.dev", toolkit.FamilyInferno, 9, rng)
	found := false
	for path := range s.Files {
		if strings.Count(path, "-") == 4 && strings.HasSuffix(path, ".js") && !strings.Contains(path, "/") {
			found = true
		}
	}
	if !found {
		t.Errorf("inferno UUID bundle not at site root: %v", fileNames(s))
	}
}

func TestBuildBenignHasNoDrainerContent(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	s := BuildBenign("gardenkitchen.com", rng)
	for path, content := range s.Files {
		if strings.Contains(content, "drainToken") {
			t.Errorf("benign file %s contains drainer code", path)
		}
	}
}

func TestGenerateFleetComposition(t *testing.T) {
	cfg := FleetConfig{Seed: 1, Phishing: 50, Benign: 30, Bait: 10,
		Start: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
	fleet := GenerateFleet(cfg)
	if len(fleet) != 90 {
		t.Fatalf("fleet size = %d", len(fleet))
	}
	var phishing, https, baitMatches int
	seen := make(map[string]bool)
	for _, s := range fleet {
		if seen[s.Domain] {
			t.Errorf("duplicate domain %s", s.Domain)
		}
		seen[s.Domain] = true
		if s.Phishing {
			phishing++
			if s.Family == "" {
				t.Error("phishing site without family")
			}
			if s.HTTPS {
				https++
			}
		} else if _, ok := domains.Suspicious(s.Domain, domains.SimilarityThreshold); ok {
			baitMatches++
		}
	}
	if phishing != 50 {
		t.Errorf("phishing = %d", phishing)
	}
	// ~75% HTTPS phishing (paper: >70%).
	if https < 30 || https > 48 {
		t.Errorf("https phishing = %d of 50, want ≈ 37", https)
	}
	if baitMatches < 10 {
		t.Errorf("bait domains matching filter = %d, want ≥ 10", baitMatches)
	}
	// Sorted by issuance.
	for i := 1; i < len(fleet); i++ {
		if fleet[i].Issued.Before(fleet[i-1].Issued) {
			t.Fatal("fleet not sorted by issuance")
		}
	}
}

func TestHostServing(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	site := BuildPhishing("blur-mint.xyz", toolkit.FamilyPink, 2, rng)
	srv := httptest.NewServer(NewHost([]*Site{site}))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/blur-mint.xyz/")
	if code != 200 || !strings.Contains(body, "Claim") {
		t.Errorf("index fetch = %d", code)
	}
	code, body = get("/blur-mint.xyz/scripts/contract.js")
	if code != 200 || !strings.Contains(body, "drainToken") {
		t.Errorf("script fetch = %d", code)
	}
	if code, _ = get("/unknown.com/"); code != 404 {
		t.Errorf("unknown domain = %d", code)
	}
	if code, _ = get("/blur-mint.xyz/missing.js"); code != 404 {
		t.Errorf("missing file = %d", code)
	}
	if _, ok := NewHost([]*Site{site}).Lookup("blur-mint.xyz"); !ok {
		t.Error("Lookup failed")
	}
}

func fileNames(s *Site) []string {
	var out []string
	for name := range s.Files {
		out = append(out, name)
	}
	return out
}
