package report_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/domains"
	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/sitehunt"
	"repro/internal/toolkit"
)

func render(f func(w *strings.Builder)) string {
	var sb strings.Builder
	f(&sb)
	return sb.String()
}

func TestTable1(t *testing.T) {
	out := render(func(w *strings.Builder) {
		report.Table1(w, core.Stats{Contracts: 391, Operators: 48, Affiliates: 3970, ProfitTxs: 49837},
			core.Stats{Contracts: 1910, Operators: 56, Affiliates: 6087, ProfitTxs: 87077})
	})
	for _, want := range []string{"391", "1910", "87077", "Profit-sharing Contracts", "DaaS Accounts"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2AndUSDFormatting(t *testing.T) {
	rows := []measure.FamilyRow{
		{Name: "Angel Drainer", Contracts: 1239, Operators: 29, Affiliates: 3338,
			Victims: 37755, ProfitUSD: 53_100_000,
			Start: time.Date(2023, 4, 1, 0, 0, 0, 0, time.UTC),
			End:   time.Date(2025, 4, 1, 0, 0, 0, 0, time.UTC)},
		{Name: "Spawn Drainer", Victims: 17, ProfitUSD: 10_000},
	}
	out := render(func(w *strings.Builder) { report.Table2(w, rows) })
	for _, want := range []string{"Angel Drainer", "$53.1M", "$10.0K", "2023-04", "Top-3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	rows := []report.Table3Row{{
		Family: "Inferno Drainer",
		Analysis: contracts.Analysis{
			ETHFunction:      "a payable fallback function",
			TokenFunction:    "a multicall function",
			OperatorPerMille: 200,
		},
	}}
	out := render(func(w *strings.Builder) { report.Table3(w, rows) })
	if !strings.Contains(out, "payable fallback") || !strings.Contains(out, "20.0%") {
		t.Errorf("Table3 output:\n%s", out)
	}
}

func TestTable4(t *testing.T) {
	dist := []domains.TLDShare{
		{TLD: "com", Count: 300, Fraction: 0.30},
		{TLD: "dev", Count: 136, Fraction: 0.136},
	}
	out := render(func(w *strings.Builder) { report.Table4(w, dist, 10) })
	if !strings.Contains(out, ".com") || !strings.Contains(out, "30.0%") {
		t.Errorf("Table4 output:\n%s", out)
	}
}

func TestFigures(t *testing.T) {
	v := measure.VictimReport{
		Victims: 100, Under1000Fraction: 0.835,
		LossBuckets: []measure.Bucket{{Label: "less than $100", Count: 51, Fraction: 0.509}},
	}
	out := render(func(w *strings.Builder) { report.Figure6(w, v) })
	if !strings.Contains(out, "50.9%") || !strings.Contains(out, "83.5%") || !strings.Contains(out, "#") {
		t.Errorf("Figure6 output:\n%s", out)
	}
	a := measure.AffiliateReport{
		Over1000Fraction: 0.502, Over10000Fraction: 0.22,
		ProfitBuckets: []measure.Bucket{{Label: "less than $1,000", Count: 49, Fraction: 0.498}},
	}
	out = render(func(w *strings.Builder) { report.Figure7(w, a) })
	if !strings.Contains(out, "50.2%") {
		t.Errorf("Figure7 output:\n%s", out)
	}
}

func TestFindingsAndValidation(t *testing.T) {
	out := render(func(w *strings.Builder) {
		report.Totals(w, measure.Totals{OperatorUSD: 23_100_000, AffiliateUSD: 111_900_000, Victims: 76582, ProfitTxs: 87077})
		report.Validation(w, &core.ValidationReport{TxReviewed: 39037, ReviewedFraction: 0.448, ContractsReviewed: 1910})
		report.VictimFindings(w, measure.VictimReport{Victims: 76582, MultiPhished: 8856, SimultaneousFraction: 0.781, UnrevokedFraction: 0.286})
		report.OperatorFindings(w, measure.OperatorReport{Operators: 56, TotalUSD: 23_100_000, TopQuartileCount: 14, TopQuartileShare: 0.757, InactiveCount: 48, MinLifecycleDays: 2, MaxLifecycleDays: 383})
		report.AffiliateFindings(w, measure.AffiliateReport{Affiliates: 6087, TotalUSD: 111_900_000, SingleOperatorFraction: 0.604, UpToThreeFraction: 0.902, Over10VictimsFraction: 0.261})
		report.RatioTable(w, []measure.RatioShare{{PerMille: 200, Count: 2346, Fraction: 0.46}})
	})
	for _, want := range []string{"$23.1M", "$111.9M", "76582", "39037", "44.8%",
		"8856", "78.1%", "28.6%", "75.7%", "2 to 383 days", "60.4%", "90.2%", "26.1%", "46.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("findings missing %q", want)
		}
	}
}

func TestSiteHuntReport(t *testing.T) {
	rep := &sitehunt.Report{
		CertsSeen: 100, DomainsSeen: 100, SuspiciousCount: 60, Crawled: 60,
		Detections: []sitehunt.Detection{
			{Domain: "a.com", Family: toolkit.FamilyAngel},
			{Domain: "b.dev", Family: toolkit.FamilyAngel},
			{Domain: "c.app", Family: toolkit.FamilyPink},
		},
	}
	out := render(func(w *strings.Builder) { report.SiteHunt(w, rep) })
	if !strings.Contains(out, "3 confirmed") || !strings.Contains(out, "Angel Drainer") {
		t.Errorf("SiteHunt output:\n%s", out)
	}
	// Families listed by count, Angel (2) before Pink (1).
	if strings.Index(out, "Angel") > strings.Index(out, "Pink") {
		t.Error("families not sorted by count")
	}
	_ = cluster.Family{}
}
