// Package report renders measurement results in the shape of the
// paper's tables and figures: Table 1 (dataset construction), Table 2
// (family overview), Table 3 (contract implementations), Table 4
// (TLDs), Figure 6/7 distributions, and the §4.3 ratio mix. Output is
// aligned text suitable for terminals and EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/domains"
	"repro/internal/measure"
	"repro/internal/sitehunt"
)

// newTab returns a tabwriter with the house style.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// usd renders a dollar amount the way the paper does ($23.1M, $0.8K).
func usd(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("$%.1fB", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("$%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("$%.1fK", v/1e3)
	default:
		return fmt.Sprintf("$%.0f", v)
	}
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }

// Table1 renders seed vs expanded dataset sizes.
func Table1(w io.Writer, seed, expanded core.Stats) {
	fmt.Fprintln(w, "Table 1: Overview of Dataset Collection Results")
	tw := newTab(w)
	fmt.Fprintln(tw, "\tSeed Dataset\tExpanded Dataset")
	fmt.Fprintf(tw, "Profit-sharing Contracts\t%d\t%d\n", seed.Contracts, expanded.Contracts)
	fmt.Fprintf(tw, "Operator Accounts\t%d\t%d\n", seed.Operators, expanded.Operators)
	fmt.Fprintf(tw, "Affiliate Accounts\t%d\t%d\n", seed.Affiliates, expanded.Affiliates)
	fmt.Fprintf(tw, "DaaS Accounts\t%d\t%d\n",
		seed.Contracts+seed.Operators+seed.Affiliates,
		expanded.Contracts+expanded.Operators+expanded.Affiliates)
	fmt.Fprintf(tw, "Profit-sharing Transactions\t%d\t%d\n", seed.ProfitTxs, expanded.ProfitTxs)
	tw.Flush()
}

// Table2 renders the family overview. A family marked with a trailing
// "†" touched quarantined evidence: its row is a lower bound.
func Table2(w io.Writer, rows []measure.FamilyRow) {
	fmt.Fprintln(w, "Table 2: Overview of DaaS Families (sorted by victim accounts)")
	tw := newTab(w)
	fmt.Fprintln(tw, "DaaS Family\tContracts\tOperators\tAffiliates\tVictims\tTotal Profits\tFingerprinted\tActive")
	tainted := false
	for _, row := range rows {
		name := row.Name
		if row.Tainted {
			name += " †"
			tainted = true
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\t%s\t%s – %s\n",
			name, row.Contracts, row.Operators, row.Affiliates, row.Victims,
			usd(row.ProfitUSD), fingerprintCell(row), month(row.Start), month(row.End))
	}
	tw.Flush()
	if tainted {
		fmt.Fprintln(w, "† evidence partially quarantined by the integrity layer; figures are lower bounds.")
	}
	fmt.Fprintf(w, "Top-3 families hold %s of all profits.\n",
		pct(measure.TopFamiliesProfitShare(rows, 3)))
}

// fingerprintCell renders a family's static-screen column: how many
// member contracts carry a fingerprint, and how many of those the
// scam-shape verdict flagged.
func fingerprintCell(row measure.FamilyRow) string {
	if row.Fingerprinted == 0 {
		return "—"
	}
	return fmt.Sprintf("%d (%d flagged)", row.Fingerprinted, row.StaticFlagged)
}

func month(t time.Time) string {
	if t.IsZero() {
		return "-"
	}
	return t.Format("2006-01")
}

// Table3Row pairs a family with its decompiled contract analysis.
type Table3Row struct {
	Family   string
	Analysis contracts.Analysis
}

// Table3 renders the phishing-function comparison.
func Table3(w io.Writer, rows []Table3Row) {
	fmt.Fprintln(w, "Table 3: Phishing Functions in Dominant DaaS Family Profit-sharing Contracts")
	tw := newTab(w)
	fmt.Fprintln(tw, "Family\tETH\tERC Tokens & NFTs\tObserved operator share")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.1f%%\n",
			row.Family, row.Analysis.ETHFunction, row.Analysis.TokenFunction,
			float64(row.Analysis.OperatorPerMille)/10)
	}
	tw.Flush()
}

// Table4 renders the top-k TLD distribution.
func Table4(w io.Writer, dist []domains.TLDShare, k int) {
	fmt.Fprintf(w, "Table 4: Top %d TLDs in Detected Phishing Domains\n", k)
	tw := newTab(w)
	fmt.Fprintln(tw, "TLD\tCount\tProportion")
	for i, share := range dist {
		if i >= k {
			break
		}
		fmt.Fprintf(tw, ".%s\t%d\t%s\n", share.TLD, share.Count, pct(share.Fraction))
	}
	tw.Flush()
}

// bar renders a proportional ASCII bar.
func bar(fraction float64) string {
	n := int(fraction*40 + 0.5)
	return strings.Repeat("#", n)
}

// Figure6 renders the victim loss distribution.
func Figure6(w io.Writer, rep measure.VictimReport) {
	fmt.Fprintln(w, "Figure 6: Distribution of Victim Account Losses")
	tw := newTab(w)
	for _, b := range rep.LossBuckets {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", b.Label, pct(b.Fraction), b.Count, bar(b.Fraction))
	}
	tw.Flush()
	fmt.Fprintf(w, "%s of victim accounts lost less than $1,000.\n", pct(rep.Under1000Fraction))
}

// Figure7 renders the affiliate profit distribution.
func Figure7(w io.Writer, rep measure.AffiliateReport) {
	fmt.Fprintln(w, "Figure 7: Distribution of Affiliate Account Profits")
	tw := newTab(w)
	for _, b := range rep.ProfitBuckets {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\n", b.Label, pct(b.Fraction), b.Count, bar(b.Fraction))
	}
	tw.Flush()
	fmt.Fprintf(w, "%s of affiliates earned over $1,000; %s earned over $10,000.\n",
		pct(rep.Over1000Fraction), pct(rep.Over10000Fraction))
}

// RatioTable renders the §4.3 profit-sharing ratio distribution.
func RatioTable(w io.Writer, dist []measure.RatioShare) {
	fmt.Fprintln(w, "Profit-sharing ratio distribution (operator share, §4.3)")
	tw := newTab(w)
	fmt.Fprintln(tw, "Operator share\tTransactions\tProportion")
	for _, rs := range dist {
		fmt.Fprintf(tw, "%.1f%%\t%d\t%s\n", float64(rs.PerMille)/10, rs.Count, pct(rs.Fraction))
	}
	tw.Flush()
}

// Totals renders the §5.2 headline numbers.
func Totals(w io.Writer, t measure.Totals) {
	fmt.Fprintf(w, "Operators earned %s and affiliates earned %s from %d victim accounts across %d profit-sharing transactions.\n",
		usd(t.OperatorUSD), usd(t.AffiliateUSD), t.Victims, t.ProfitTxs)
}

// Validation renders the §5.2 validation summary.
func Validation(w io.Writer, rep *core.ValidationReport) {
	fmt.Fprintf(w, "Validation: reviewed %d transactions (%s of the dataset) across %d contracts, %d operators, %d affiliates; %d false positives.\n",
		rep.TxReviewed, pct(rep.ReviewedFraction),
		rep.ContractsReviewed, rep.OperatorsReviewed, rep.AffiliatesReviewed,
		len(rep.FalsePositives))
}

// VictimFindings renders the §6.1 bullet statistics.
func VictimFindings(w io.Writer, rep measure.VictimReport) {
	fmt.Fprintf(w, "Victims: %d accounts lost %s; %.1f victims/day on average (%d days above 100/day).\n",
		rep.Victims, usd(rep.TotalLossUSD), rep.AvgDailyVictims, rep.DaysOver100)
	fmt.Fprintf(w, "Multi-phished: %d accounts; %s signed multiple phishing txs simultaneously; %s never revoked approvals.\n",
		rep.MultiPhished, pct(rep.SimultaneousFraction), pct(rep.UnrevokedFraction))
}

// OperatorFindings renders the §6.2 bullet statistics.
func OperatorFindings(w io.Writer, rep measure.OperatorReport) {
	fmt.Fprintf(w, "Operators: %d accounts earned %s; the top %d accounts (25%%) hold %s of operator profits.\n",
		rep.Operators, usd(rep.TotalUSD), rep.TopQuartileCount, pct(rep.TopQuartileShare))
	if rep.InactiveCount > 0 {
		fmt.Fprintf(w, "Lifecycles of %d inactive operator accounts range from %.0f to %.0f days.\n",
			rep.InactiveCount, rep.MinLifecycleDays, rep.MaxLifecycleDays)
	}
}

// AffiliateFindings renders the §6.3 bullet statistics.
func AffiliateFindings(w io.Writer, rep measure.AffiliateReport) {
	fmt.Fprintf(w, "Affiliates: %d accounts earned %s; %s drew tokens from more than 10 victims.\n",
		rep.Affiliates, usd(rep.TotalUSD), pct(rep.Over10VictimsFraction))
	fmt.Fprintf(w, "%s of affiliates share profits with a single operator; %s with at most three.\n",
		pct(rep.SingleOperatorFraction), pct(rep.UpToThreeFraction))
}

// SiteHunt renders the §8.2 detection summary.
func SiteHunt(w io.Writer, rep *sitehunt.Report) {
	fmt.Fprintf(w, "Website detection: %d certificates seen, %d domains, %d suspicious, %d crawled, %d confirmed drainer deployments.\n",
		rep.CertsSeen, rep.DomainsSeen, rep.SuspiciousCount, rep.Crawled, rep.Detected())
	families := make(map[string]int)
	for _, det := range rep.Detections {
		families[det.Family]++
	}
	names := make([]string, 0, len(families))
	for f := range families {
		names = append(names, f)
	}
	sort.Slice(names, func(i, j int) bool { return families[names[i]] > families[names[j]] })
	for _, f := range names {
		fmt.Fprintf(w, "  %-18s %d sites\n", f, families[f])
	}
}
