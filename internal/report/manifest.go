package report

import (
	"fmt"
	"io"
	"sort"
)

// Manifest is the completeness accounting of one pipeline run: what
// was fetched, what the integrity layer refused and why, which
// accounts are only partially covered, and how the gaps propagate into
// labels and family clustering. It lives OUTSIDE the dataset export —
// a run that recovered every corrupt response byte-identically still
// reports here how much recovering it took.
type Manifest struct {
	// TxFetched counts admitted transaction+receipt pairs.
	TxFetched int64
	// TxQuarantined counts records the build dropped as quarantined.
	TxQuarantined int64
	// TxPermanent counts records that exhausted their re-fetch budget.
	TxPermanent int64
	// Violations maps "object/reason" to quarantine rejection counts
	// (including rejections later recovered by a clean re-fetch).
	Violations map[string]int64
	// AccountsScanned and AccountsDegraded split the frontier walk into
	// fully and partially covered account histories.
	AccountsScanned  int64
	AccountsDegraded int
	// DegradedAccounts lists the partially-scanned accounts (hex,
	// address order).
	DegradedAccounts []string
	// LabelsAccepted and LabelsRejected summarize seed-label ingestion;
	// LabelRejectReasons maps "source/reason" to skip counts.
	LabelsAccepted     int64
	LabelsRejected     int64
	LabelRejectReasons map[string]int64
	// FamiliesTotal and FamiliesTainted report how far quarantined
	// evidence reached into the §7.1 clustering.
	FamiliesTotal   int
	FamiliesTainted int
}

// Clean reports whether the run saw no integrity rejections at all.
func (m Manifest) Clean() bool {
	return m.TxQuarantined == 0 && m.TxPermanent == 0 &&
		len(m.Violations) == 0 && m.LabelsRejected == 0
}

// RenderManifest writes the completeness manifest section.
func RenderManifest(w io.Writer, m Manifest) {
	fmt.Fprintln(w, "Completeness Manifest")
	tw := newTab(w)
	fmt.Fprintf(tw, "Transactions admitted\t%d\n", m.TxFetched)
	fmt.Fprintf(tw, "Transactions quarantined\t%d\n", m.TxQuarantined)
	fmt.Fprintf(tw, "Records permanently quarantined\t%d\n", m.TxPermanent)
	fmt.Fprintf(tw, "Accounts scanned\t%d\n", m.AccountsScanned)
	fmt.Fprintf(tw, "Accounts degraded\t%d\n", m.AccountsDegraded)
	fmt.Fprintf(tw, "Labels accepted\t%d\n", m.LabelsAccepted)
	fmt.Fprintf(tw, "Labels rejected\t%d\n", m.LabelsRejected)
	fmt.Fprintf(tw, "Families (tainted/total)\t%d/%d\n", m.FamiliesTainted, m.FamiliesTotal)
	tw.Flush()
	renderReasonCounts(w, "Integrity violations", m.Violations)
	renderReasonCounts(w, "Label rejections", m.LabelRejectReasons)
	if len(m.DegradedAccounts) > 0 {
		fmt.Fprintf(w, "Degraded accounts: %d (partially scanned; dataset is a lower bound for them)\n", len(m.DegradedAccounts))
		for _, a := range m.DegradedAccounts {
			fmt.Fprintf(w, "  %s\n", a)
		}
	}
	if m.Clean() {
		fmt.Fprintln(w, "No integrity violations: every fetched record was admitted on first validation.")
	}
}

// renderReasonCounts prints a sorted reason-coded count block, omitted
// when empty.
func renderReasonCounts(w io.Writer, title string, counts map[string]int64) {
	if len(counts) == 0 {
		return
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "%s:\n", title)
	for _, k := range keys {
		fmt.Fprintf(w, "  %-32s %d\n", k, counts[k])
	}
}
