package screen

import (
	"sync/atomic"
	"time"

	"repro/internal/ethtypes"
	"repro/internal/obs"
)

// Verdict labels for the request counter.
const (
	verdictListed       = "listed"
	verdictClean        = "clean"
	verdictDomainListed = "domain-listed"
	verdictDomainClean  = "domain-clean"
)

// Engine publishes an immutable snapshot behind an atomic pointer:
// Screen and ScreenDomain never take a lock, and Swap installs a fresh
// snapshot in one atomic store while readers continue against the old
// one. All instruments are latched at construction so the hot path
// performs zero heap allocations.
type Engine struct {
	snap atomic.Pointer[Snapshot]
	// swapAtNanos is the obs.Now() of the last swap, for the age gauge.
	swapAtNanos atomic.Int64
	// freshAtNanos is the obs.Now() of the last freshness confirmation:
	// a swap, or MarkFresh from a healthy upstream step that produced no
	// dataset change. Age() measures staleness from here, so a quiet but
	// healthy upstream does not read as degraded.
	freshAtNanos atomic.Int64

	// Latched instruments; all nil-safe no-ops without a registry.
	reqListed       *obs.Counter
	reqClean        *obs.Counter
	reqDomainListed *obs.Counter
	reqDomainClean  *obs.Counter
	duration        *obs.Histogram
	swaps           *obs.Counter
	snapRecords     *obs.Gauge
	snapDomains     *obs.Gauge
	snapAge         *obs.Gauge
	stale           *obs.Gauge
}

// NewEngine returns an engine reporting through reg (nil disables
// instrumentation). It serves nothing until the first Swap.
func NewEngine(reg *obs.Registry) *Engine {
	requests := reg.CounterVec("daas_screen_requests_total", "screening lookups by verdict", "verdict")
	return &Engine{
		reqListed:       requests.With(verdictListed),
		reqClean:        requests.With(verdictClean),
		reqDomainListed: requests.With(verdictDomainListed),
		reqDomainClean:  requests.With(verdictDomainClean),
		duration:        reg.Histogram("daas_screen_duration_seconds", "single-lookup screening latency", obs.DefDurationBuckets),
		swaps:           reg.Counter("daas_screen_snapshot_swaps_total", "snapshot swaps installed by pipeline rebuilds"),
		snapRecords:     reg.Gauge("daas_screen_snapshot_records", "listed addresses in the current snapshot"),
		snapDomains:     reg.Gauge("daas_screen_snapshot_domains", "listed domains in the current snapshot"),
		snapAge:         reg.Gauge("daas_screen_snapshot_age_seconds", "seconds since the current snapshot was installed (updated on each lookup)"),
		stale:           reg.Gauge("daas_screen_stale_seconds", "seconds since the snapshot was last confirmed fresh by its upstream (0 while healthy; grows during an outage)"),
	}
}

// Swap atomically installs a new snapshot; in-flight readers finish
// against the one they loaded.
func (e *Engine) Swap(s *Snapshot) {
	e.snap.Store(s)
	now := obs.Now().UnixNano()
	e.swapAtNanos.Store(now)
	e.freshAtNanos.Store(now)
	e.swaps.Inc()
	e.snapRecords.Set(int64(s.Len()))
	e.snapDomains.Set(int64(s.DomainCount()))
	e.snapAge.Set(0)
	e.stale.Set(0)
}

// MarkFresh records that the upstream (a radar step, a pipeline
// rebuild) confirmed the current snapshot is up to date even though no
// swap was needed. Degraded-mode staleness (Age, the
// daas_screen_stale_seconds gauge, the snapshotAge response field) is
// measured from the last MarkFresh or Swap.
func (e *Engine) MarkFresh() {
	e.freshAtNanos.Store(obs.Now().UnixNano())
	e.stale.Set(0)
}

// Age reports how long ago the snapshot was last confirmed fresh, or 0
// if nothing was ever installed. Under a healthy upstream this hovers
// near the step cadence; during an outage it grows without bound and
// the engine keeps serving the last good snapshot.
func (e *Engine) Age() time.Duration {
	at := e.freshAtNanos.Load()
	if at == 0 {
		return 0
	}
	return time.Duration(obs.Now().UnixNano() - at)
}

// Snapshot returns the currently published snapshot (nil before the
// first swap). Callers holding it see a consistent view regardless of
// concurrent swaps.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Screen answers one address lookup off the current snapshot. Zero
// heap allocations: the record's strings alias the snapshot tables.
func (e *Engine) Screen(a ethtypes.Address) (Record, bool) {
	start := obs.Now()
	rec, ok := e.snap.Load().Lookup(a)
	e.observe(start, ok, e.reqListed, e.reqClean)
	return rec, ok
}

// ScreenDomain answers one domain lookup off the current snapshot.
func (e *Engine) ScreenDomain(domain string) bool {
	start := obs.Now()
	ok := e.snap.Load().LookupDomain(domain)
	e.observe(start, ok, e.reqDomainListed, e.reqDomainClean)
	return ok
}

// observe books one lookup: latency, verdict count, and the snapshot
// age gauge (an atomic store, so even the gauge refresh stays on the
// zero-allocation path).
func (e *Engine) observe(start time.Time, listed bool, hit, miss *obs.Counter) {
	e.duration.ObserveDuration(obs.Since(start))
	if listed {
		hit.Inc()
	} else {
		miss.Inc()
	}
	if at := e.swapAtNanos.Load(); at != 0 {
		e.snapAge.Set((start.UnixNano() - at) / 1e9)
	}
	if at := e.freshAtNanos.Load(); at != 0 {
		e.stale.Set((start.UnixNano() - at) / 1e9)
	}
}
