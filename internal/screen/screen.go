// Package screen is the read-optimized account-screening engine behind
// the paper's §8.1 defense loop: wallets block "any user transactions
// interacting with" recovered DaaS accounts, which turns the
// measurement pipeline's outputs (dataset accounts, family clusters,
// confirmed phishing domains) into a serving workload — "is this
// address/contract/domain a known operator, affiliate, drainer
// contract, or phishing site?" answered at wallet scale.
//
// The design is an immutable Snapshot compiled from pipeline outputs
// into cache-friendly flat structures: a single open-addressing hash
// index over 20-byte addresses backed by flat arrays with integer
// record IDs (no per-entry pointers, zero heap allocations on the
// lookup path) and a sorted, normalized domain table answered by
// binary search. An Engine publishes the current snapshot through an
// atomic pointer, so reads never take a lock and a pipeline rebuild
// swaps the whole snapshot in one atomic store. Snapshot bytes are
// deterministic: the same inputs always serialize to identical bytes,
// regardless of insertion order.
package screen

import "strings"

// Kind classifies a listed account, mirroring the dataset's Table 1
// partitions plus a manual bucket for operator-curated entries.
type Kind uint8

// Account kinds.
const (
	// KindManual marks an entry added by hand (Guard.BlockAddress,
	// operator hotlists) rather than recovered by the pipeline.
	KindManual Kind = iota
	// KindContract marks a profit-sharing drainer contract.
	KindContract
	// KindOperator marks a DaaS operator account.
	KindOperator
	// KindAffiliate marks an affiliate account.
	KindAffiliate
)

func (k Kind) String() string {
	switch k {
	case KindManual:
		return "manual"
	case KindContract:
		return "contract"
	case KindOperator:
		return "operator"
	case KindAffiliate:
		return "affiliate"
	default:
		return "unknown"
	}
}

// Canonical reason strings for pipeline-recovered entries. The guard's
// verdict details and the screening API both quote these, so the two
// consumers of a dataset stay word-for-word consistent (§8.1 reporting
// flows through wallets and explorers alike).
const (
	ReasonContract  = "daas profit-sharing contract"
	ReasonOperator  = "daas operator account"
	ReasonAffiliate = "daas affiliate account"
)

// NormalizeDomain canonicalizes a domain for table storage and lookup:
// lowercase, no trailing dot (DNS root marker), no port suffix, no
// IPv6 brackets (`[2001:db8::1]:443` and `2001:db8::1` canonicalize
// to the same string). IDN input passes through without punycode
// conversion — punycode labels are already lowercase ASCII, and raw
// Unicode labels are only case-folded, never re-encoded. The fast
// path returns the input string unchanged (no allocation) when it is
// already canonical.
func NormalizeDomain(domain string) string {
	if len(domain) > 0 && domain[0] == '[' {
		// Bracketed host, RFC 3986 style: "[v6-literal]" or
		// "[v6-literal]:port". Unwrap the brackets and drop the port.
		// Anything after "]" other than a single ":port" suffix is
		// malformed; leave those inputs as given.
		if end := strings.IndexByte(domain, ']'); end >= 0 {
			rest := domain[end+1:]
			if rest == "" || (rest[0] == ':' && strings.IndexByte(rest[1:], ':') < 0) {
				domain = domain[1:end]
			}
		}
	} else if i := strings.LastIndexByte(domain, ':'); i >= 0 && strings.IndexByte(domain, ':') == i {
		// Strip one :port suffix. A colon inside an unbracketed IPv6
		// literal is not a port separator; those contain more than one
		// colon, so only a lone colon is treated as a port.
		domain = domain[:i]
	}
	domain = strings.TrimSuffix(domain, ".")
	if isLowerASCII(domain) {
		return domain
	}
	return strings.ToLower(domain)
}

// isLowerASCII reports whether s contains no ASCII uppercase letters,
// i.e. ToLower would return it unchanged for canonical-form checks.
// Non-ASCII bytes pass: NormalizeDomain leaves IDN input as given.
func isLowerASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			return false
		}
		if c >= 0x80 {
			// Multi-byte rune: fall back to ToLower, which handles any
			// cased non-ASCII letters.
			return false
		}
	}
	return true
}
