package screen

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/ethtypes"
)

// Record is one listed account as the screening API reports it. The
// string fields alias the snapshot's interned tables, so returning a
// Record by value copies two string headers, never their bytes.
type Record struct {
	Address ethtypes.Address
	Kind    Kind
	// Reason is the human-readable listing reason (one of the Reason*
	// constants for pipeline entries, free text for manual ones).
	Reason string
	// Family is the §7.1 DaaS family name, when clustering attributed
	// one.
	Family string
	// Tainted propagates the family's integrity flag: membership
	// evidence touched quarantined records, so the listing is a lower
	// bound, not a complete picture.
	Tainted bool
	// StaticFlagged carries the static fingerprint screen's scam-shape
	// verdict for contracts.
	StaticFlagged bool
}

// Record flag bits in the flat flags array.
const (
	flagTainted       = 1 << 0
	flagStaticFlagged = 1 << 1
)

// Snapshot is an immutable compiled screening index. Build one with a
// Builder (or Compile), publish it through an Engine. All lookup
// methods are safe for unlimited concurrent use and never allocate.
type Snapshot struct {
	// Flat record arrays, sorted by address. Parallel by record ID.
	addrs     []ethtypes.Address
	kinds     []Kind
	flags     []uint8
	reasonIDs []uint32
	familyIDs []uint32

	// Interned string tables; index 0 is always "".
	reasons  []string
	families []string

	// index is the open-addressing (linear probing) hash table: each
	// slot holds a record ID or -1 for empty. Power-of-two length, at
	// most half full.
	index []int32
	mask  uint64

	// domains is the sorted normalized phishing-domain table.
	domains []string
}

// hashAddr mixes the 20 address bytes into 64 bits (splitmix64 finalizer
// over the two words plus tail). Deterministic across processes: the
// index layout is a pure function of the record set.
func hashAddr(a *ethtypes.Address) uint64 {
	lo := binary.LittleEndian.Uint64(a[0:8])
	hi := binary.LittleEndian.Uint64(a[8:16])
	tail := uint64(binary.LittleEndian.Uint32(a[16:20]))
	z := lo + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z ^= hi
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= tail
	return z ^ (z >> 31)
}

// Lookup finds the record for an address. The zero-allocation hot
// path: one hash, a linear probe over a flat int32 slot array, and at
// most a handful of 20-byte compares. Nil-safe: a nil snapshot (engine
// before its first swap) lists nothing.
func (s *Snapshot) Lookup(a ethtypes.Address) (Record, bool) {
	if s == nil || len(s.index) == 0 {
		return Record{}, false
	}
	slot := hashAddr(&a) & s.mask
	for {
		id := s.index[slot]
		if id < 0 {
			return Record{}, false
		}
		if s.addrs[id] == a {
			return Record{
				Address:       a,
				Kind:          s.kinds[id],
				Reason:        s.reasons[s.reasonIDs[id]],
				Family:        s.families[s.familyIDs[id]],
				Tainted:       s.flags[id]&flagTainted != 0,
				StaticFlagged: s.flags[id]&flagStaticFlagged != 0,
			}, true
		}
		slot = (slot + 1) & s.mask
	}
}

// LookupDomain reports whether a domain is a confirmed phishing
// deployment. The argument is normalized first, so callers may pass
// raw origin strings; an already-canonical domain takes the
// zero-allocation path.
func (s *Snapshot) LookupDomain(domain string) bool {
	if s == nil || len(s.domains) == 0 {
		return false
	}
	d := NormalizeDomain(domain)
	i := sort.SearchStrings(s.domains, d)
	return i < len(s.domains) && s.domains[i] == d
}

// Len reports the number of listed addresses.
func (s *Snapshot) Len() int {
	if s == nil {
		return 0
	}
	return len(s.addrs)
}

// DomainCount reports the number of listed domains.
func (s *Snapshot) DomainCount() int {
	if s == nil {
		return 0
	}
	return len(s.domains)
}

// Records returns every listed record in address order. Intended for
// re-building and serialization, not the hot path.
func (s *Snapshot) Records() []Record {
	if s == nil {
		return nil
	}
	out := make([]Record, len(s.addrs))
	for id := range s.addrs {
		out[id] = Record{
			Address:       s.addrs[id],
			Kind:          s.kinds[id],
			Reason:        s.reasons[s.reasonIDs[id]],
			Family:        s.families[s.familyIDs[id]],
			Tainted:       s.flags[id]&flagTainted != 0,
			StaticFlagged: s.flags[id]&flagStaticFlagged != 0,
		}
	}
	return out
}

// Domains returns the sorted normalized domain table.
func (s *Snapshot) Domains() []string {
	if s == nil {
		return nil
	}
	return append([]string(nil), s.domains...)
}

// Builder accumulates records and domains, then compiles them into a
// Snapshot. Not safe for concurrent use: guard it (the walletguard
// does) or confine it to the pipeline goroutine. The compiled snapshot
// is independent of insertion order.
type Builder struct {
	recs    map[ethtypes.Address]Record
	domains map[string]bool
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		recs:    make(map[ethtypes.Address]Record),
		domains: make(map[string]bool),
	}
}

// Add lists one account; a later Add for the same address wins.
func (b *Builder) Add(r Record) {
	b.recs[r.Address] = r
}

// AddDomain lists one phishing domain (normalized on the way in).
func (b *Builder) AddDomain(domain string) {
	d := NormalizeDomain(domain)
	if d != "" {
		b.domains[d] = true
	}
}

// Len reports the number of listed addresses so far.
func (b *Builder) Len() int { return len(b.recs) }

// Build compiles the accumulated entries into an immutable snapshot.
// Records are laid out in address order and string tables are interned
// in first-use order over that layout, so identical inputs compile to
// identical snapshots (and identical serialized bytes) no matter how
// they were inserted.
func (b *Builder) Build() *Snapshot {
	addrs := make([]ethtypes.Address, 0, len(b.recs))
	for a := range b.recs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		return bytes.Compare(addrs[i][:], addrs[j][:]) < 0
	})

	s := &Snapshot{
		addrs:     addrs,
		kinds:     make([]Kind, len(addrs)),
		flags:     make([]uint8, len(addrs)),
		reasonIDs: make([]uint32, len(addrs)),
		familyIDs: make([]uint32, len(addrs)),
		reasons:   []string{""},
		families:  []string{""},
	}
	reasonID := map[string]uint32{"": 0}
	familyID := map[string]uint32{"": 0}
	intern := func(tab *[]string, ids map[string]uint32, v string) uint32 {
		if id, ok := ids[v]; ok {
			return id
		}
		id := uint32(len(*tab))
		*tab = append(*tab, v)
		ids[v] = id
		return id
	}
	for id, a := range addrs {
		r := b.recs[a]
		s.kinds[id] = r.Kind
		if r.Tainted {
			s.flags[id] |= flagTainted
		}
		if r.StaticFlagged {
			s.flags[id] |= flagStaticFlagged
		}
		s.reasonIDs[id] = intern(&s.reasons, reasonID, r.Reason)
		s.familyIDs[id] = intern(&s.families, familyID, r.Family)
	}

	s.domains = make([]string, 0, len(b.domains))
	for d := range b.domains {
		s.domains = append(s.domains, d)
	}
	sort.Strings(s.domains)

	s.buildIndex()
	return s
}

// buildIndex lays out the open-addressing table: power-of-two size
// with load factor ≤ 0.5, so probe chains stay short and the hot path
// rarely touches more than one cache line of slots.
func (s *Snapshot) buildIndex() {
	size := 8
	for size < 2*len(s.addrs) {
		size *= 2
	}
	s.index = make([]int32, size)
	for i := range s.index {
		s.index[i] = -1
	}
	s.mask = uint64(size - 1)
	for id := range s.addrs {
		slot := hashAddr(&s.addrs[id]) & s.mask
		for s.index[slot] >= 0 {
			slot = (slot + 1) & s.mask
		}
		s.index[slot] = int32(id)
	}
}

// snapshotMagic leads the serialized form; bump the version on format
// changes.
var snapshotMagic = []byte("daas-screen/v1\n")

// MarshalBinary serializes the snapshot deterministically: the same
// logical content always yields identical bytes (records in address
// order, tables in interning order, domains sorted). The hash index is
// not serialized — it is a pure function of the records and is rebuilt
// on load.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(snapshotMagic)
	writeUvarint(&buf, uint64(len(s.reasons)))
	for _, r := range s.reasons {
		writeString(&buf, r)
	}
	writeUvarint(&buf, uint64(len(s.families)))
	for _, f := range s.families {
		writeString(&buf, f)
	}
	writeUvarint(&buf, uint64(len(s.addrs)))
	for id := range s.addrs {
		buf.Write(s.addrs[id][:])
		buf.WriteByte(byte(s.kinds[id]))
		buf.WriteByte(s.flags[id])
		writeUvarint(&buf, uint64(s.reasonIDs[id]))
		writeUvarint(&buf, uint64(s.familyIDs[id]))
	}
	writeUvarint(&buf, uint64(len(s.domains)))
	for _, d := range s.domains {
		writeString(&buf, d)
	}
	return buf.Bytes(), nil
}

// UnmarshalSnapshot parses serialized snapshot bytes and rebuilds the
// hash index.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	if !bytes.HasPrefix(data, snapshotMagic) {
		return nil, fmt.Errorf("screen: not a %q artifact", bytes.TrimSuffix(snapshotMagic, []byte("\n")))
	}
	r := bytes.NewReader(data[len(snapshotMagic):])
	s := &Snapshot{}
	var err error
	if s.reasons, err = readStrings(r); err != nil {
		return nil, fmt.Errorf("screen: reason table: %w", err)
	}
	if s.families, err = readStrings(r); err != nil {
		return nil, fmt.Errorf("screen: family table: %w", err)
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("screen: record count: %w", err)
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("screen: record count %d exceeds remaining input", n)
	}
	s.addrs = make([]ethtypes.Address, n)
	s.kinds = make([]Kind, n)
	s.flags = make([]uint8, n)
	s.reasonIDs = make([]uint32, n)
	s.familyIDs = make([]uint32, n)
	for id := uint64(0); id < n; id++ {
		if _, err := r.Read(s.addrs[id][:]); err != nil {
			return nil, fmt.Errorf("screen: record %d address: %w", id, err)
		}
		k, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("screen: record %d kind: %w", id, err)
		}
		s.kinds[id] = Kind(k)
		if s.flags[id], err = r.ReadByte(); err != nil {
			return nil, fmt.Errorf("screen: record %d flags: %w", id, err)
		}
		ri, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("screen: record %d reason id: %w", id, err)
		}
		fi, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("screen: record %d family id: %w", id, err)
		}
		if ri >= uint64(len(s.reasons)) || fi >= uint64(len(s.families)) {
			return nil, fmt.Errorf("screen: record %d table index out of range", id)
		}
		s.reasonIDs[id] = uint32(ri)
		s.familyIDs[id] = uint32(fi)
	}
	if s.domains, err = readStrings(r); err != nil {
		return nil, fmt.Errorf("screen: domain table: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("screen: %d trailing bytes after snapshot", r.Len())
	}
	s.buildIndex()
	return s, nil
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func readStrings(r *bytes.Reader) ([]string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("count %d exceeds remaining input", n)
	}
	out := make([]string, n)
	for i := range out {
		l, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if l > uint64(r.Len()) {
			return nil, fmt.Errorf("string length %d exceeds remaining input", l)
		}
		b := make([]byte, l)
		if _, err := r.Read(b); err != nil {
			return nil, err
		}
		out[i] = string(b)
	}
	return out, nil
}
