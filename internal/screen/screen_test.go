package screen_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/obs"
	"repro/internal/screen"
)

func addr(b byte) ethtypes.Address {
	var a ethtypes.Address
	for i := range a {
		a[i] = b
	}
	return a
}

func sampleRecords() []screen.Record {
	return []screen.Record{
		{Address: addr(1), Kind: screen.KindContract, Reason: screen.ReasonContract, Family: "Inferno", StaticFlagged: true},
		{Address: addr(2), Kind: screen.KindOperator, Reason: screen.ReasonOperator, Family: "Inferno", Tainted: true},
		{Address: addr(3), Kind: screen.KindAffiliate, Reason: screen.ReasonAffiliate},
		{Address: addr(4), Kind: screen.KindManual, Reason: "reported by victim"},
	}
}

func buildSample(order []int) *screen.Snapshot {
	recs := sampleRecords()
	b := screen.NewBuilder()
	for _, i := range order {
		b.Add(recs[i])
	}
	b.AddDomain("Evil-Drainer.example")
	b.AddDomain("claim.airdrop.example.")
	b.AddDomain("mint.example:443")
	return b.Build()
}

func TestLookupRoundTrip(t *testing.T) {
	snap := buildSample([]int{0, 1, 2, 3})
	for _, want := range sampleRecords() {
		got, ok := snap.Lookup(want.Address)
		if !ok {
			t.Fatalf("Lookup(%s) = not found", want.Address)
		}
		if got != want {
			t.Errorf("Lookup(%s) = %+v, want %+v", want.Address, got, want)
		}
	}
	if _, ok := snap.Lookup(addr(9)); ok {
		t.Error("unlisted address reported as listed")
	}
	if snap.Len() != 4 {
		t.Errorf("Len() = %d, want 4", snap.Len())
	}
	if snap.DomainCount() != 3 {
		t.Errorf("DomainCount() = %d, want 3", snap.DomainCount())
	}
}

func TestLookupDomainNormalizes(t *testing.T) {
	snap := buildSample([]int{0})
	for _, query := range []string{
		"evil-drainer.example",
		"EVIL-DRAINER.example",
		"evil-drainer.example.",
		"evil-drainer.example:8443",
		"claim.airdrop.example",
		"mint.example",
	} {
		if !snap.LookupDomain(query) {
			t.Errorf("LookupDomain(%q) = false, want true", query)
		}
	}
	if snap.LookupDomain("benign.example") {
		t.Error("unlisted domain reported as listed")
	}
}

func TestNormalizeDomain(t *testing.T) {
	cases := []struct{ in, want string }{
		{"evil.example", "evil.example"},
		{"EVIL.Example", "evil.example"},
		{"evil.example.", "evil.example"},
		{"evil.example:443", "evil.example"},
		{"EVIL.example.:8080", "evil.example"},
		{"xn--brger-kva.example", "xn--brger-kva.example"}, // punycode passes through
		{"bürger.example", "bürger.example"},               // raw IDN passes through
		{"", ""},
		{".", ""},
		// Bracketed IPv6 hosts must match their unbracketed form.
		{"[2001:db8::1]:443", "2001:db8::1"},
		{"[2001:db8::1]", "2001:db8::1"},
		{"[::1]:8080", "::1"},
		{"[::1]", "::1"},
		{"[2001:DB8::A]:443", "2001:db8::a"},
		// Unbracketed IPv6 literals keep every colon: only a lone colon
		// is a port separator.
		{"2001:db8::1", "2001:db8::1"},
		{"::1", "::1"},
		// Malformed bracket forms pass through rather than guessing.
		{"[2001:db8::1]:443:extra", "[2001:db8::1]:443:extra"},
		{"[2001:db8::1", "[2001:db8::1"},
	}
	for _, c := range cases {
		if got := screen.NormalizeDomain(c.in); got != c.want {
			t.Errorf("NormalizeDomain(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizeDomainZeroAlloc pins the no-allocation contract for the
// lookup path: canonical input returns the same string, and every
// strip (port, root dot, brackets) is pure slicing.
func TestNormalizeDomainZeroAlloc(t *testing.T) {
	inputs := []string{
		"evil.example",
		"evil.example:443",
		"evil.example.",
		"2001:db8::1",
		"[2001:db8::1]:443",
		"[::1]",
	}
	for _, in := range inputs {
		if allocs := testing.AllocsPerRun(100, func() {
			_ = screen.NormalizeDomain(in)
		}); allocs != 0 {
			t.Errorf("NormalizeDomain(%q) allocates %.1f times per run, want 0", in, allocs)
		}
	}
}

// TestSnapshotBytesDeterministic is the snapshot determinism contract:
// the same logical inputs serialize to identical bytes no matter the
// insertion order.
func TestSnapshotBytesDeterministic(t *testing.T) {
	a, err := buildSample([]int{0, 1, 2, 3}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildSample([]int{3, 1, 0, 2}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("snapshot bytes differ across insertion orders")
	}
}

func TestSnapshotMarshalRoundTrip(t *testing.T) {
	snap := buildSample([]int{2, 0, 3, 1})
	data, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := screen.UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range sampleRecords() {
		got, ok := back.Lookup(want.Address)
		if !ok || got != want {
			t.Errorf("after round trip Lookup(%s) = %+v (%v), want %+v", want.Address, got, ok, want)
		}
	}
	if !back.LookupDomain("evil-drainer.example") {
		t.Error("domain lost in round trip")
	}
	again, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("re-marshaled snapshot differs from original bytes")
	}
	if _, err := screen.UnmarshalSnapshot([]byte("not a snapshot")); err == nil {
		t.Error("UnmarshalSnapshot accepted garbage")
	}
	if _, err := screen.UnmarshalSnapshot(data[:len(data)-1]); err == nil {
		t.Error("UnmarshalSnapshot accepted truncated input")
	}
}

func TestCompileFromPipelineOutputs(t *testing.T) {
	ds := core.NewDataset()
	now := time.Date(2024, 3, 1, 0, 0, 0, 0, time.UTC)
	ds.Contracts[addr(1)] = &core.ContractRecord{Address: addr(1), FirstSeen: now, LastSeen: now, StaticFlagged: true}
	ds.Operators[addr(2)] = &core.AccountRecord{Address: addr(2), FirstSeen: now, LastSeen: now}
	ds.Affiliates[addr(3)] = &core.AccountRecord{Address: addr(3), FirstSeen: now, LastSeen: now}
	fams := []*cluster.Family{{
		Name:       "Angel",
		Tainted:    true,
		Operators:  []ethtypes.Address{addr(2)},
		Contracts:  []ethtypes.Address{addr(1)},
		Affiliates: []ethtypes.Address{addr(3)},
	}}
	snap := screen.Compile(ds, fams, []string{"Phish.Example."})

	rec, ok := snap.Lookup(addr(1))
	if !ok || rec.Kind != screen.KindContract || rec.Reason != screen.ReasonContract ||
		rec.Family != "Angel" || !rec.Tainted || !rec.StaticFlagged {
		t.Errorf("contract record = %+v (%v)", rec, ok)
	}
	rec, ok = snap.Lookup(addr(2))
	if !ok || rec.Kind != screen.KindOperator || rec.Reason != screen.ReasonOperator || rec.Family != "Angel" {
		t.Errorf("operator record = %+v (%v)", rec, ok)
	}
	rec, ok = snap.Lookup(addr(3))
	if !ok || rec.Kind != screen.KindAffiliate || rec.Reason != screen.ReasonAffiliate {
		t.Errorf("affiliate record = %+v (%v)", rec, ok)
	}
	if !snap.LookupDomain("phish.example") {
		t.Error("compiled snapshot missing phishing domain")
	}

	// Compiling the same inputs twice yields identical bytes.
	a, _ := snap.MarshalBinary()
	b, _ := screen.Compile(ds, fams, []string{"Phish.Example."}).MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Error("Compile is not deterministic")
	}
}

// TestScreenZeroAlloc is the hot-path allocation gate from the
// roadmap's p99 < 5ms budget: a single-address screen performs zero
// heap allocations, instruments included.
func TestScreenZeroAlloc(t *testing.T) {
	eng := screen.NewEngine(obs.NewRegistry())
	eng.Swap(buildSample([]int{0, 1, 2, 3}))
	hit, miss := addr(1), addr(9)
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := eng.Screen(hit); !ok {
			t.Fatal("hit not found")
		}
	}); n != 0 {
		t.Errorf("Screen(hit) allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, ok := eng.Screen(miss); ok {
			t.Fatal("miss found")
		}
	}); n != 0 {
		t.Errorf("Screen(miss) allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if !eng.ScreenDomain("evil-drainer.example") {
			t.Fatal("domain not found")
		}
	}); n != 0 {
		t.Errorf("ScreenDomain(canonical) allocates %.1f objects/op, want 0", n)
	}
}

// TestEngineSwapUnderConcurrentReads drives lock-free readers against
// continuous snapshot swaps; under -race this is the zero-lock
// correctness gate, and every verdict must match one of the published
// snapshots (here: all identical, so verdicts never change).
func TestEngineSwapUnderConcurrentReads(t *testing.T) {
	reg := obs.NewRegistry()
	eng := screen.NewEngine(reg)
	eng.Swap(buildSample([]int{0, 1, 2, 3}))

	done := make(chan struct{})
	go func() {
		// Continuous rebuild-and-swap churn while the readers run.
		defer close(done)
		for i := 0; i < 200; i++ {
			eng.Swap(buildSample([]int{3, 2, 1, 0}))
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				rec, ok := eng.Screen(addr(2))
				if !ok || rec.Reason != screen.ReasonOperator || !rec.Tainted {
					t.Errorf("verdict changed under swap: %+v (%v)", rec, ok)
					return
				}
				if _, ok := eng.Screen(addr(9)); ok {
					t.Error("unlisted address listed under swap")
					return
				}
				if !eng.ScreenDomain("mint.example") {
					t.Error("domain verdict changed under swap")
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done

	snap := reg.Snapshot()
	if s := snap.Find("daas_screen_snapshot_swaps_total"); s == nil || s.Counter < 201 {
		t.Errorf("swap counter = %+v, want >= 201", s)
	}
	if s := snap.Find("daas_screen_requests_total", "listed"); s == nil || s.Counter == 0 {
		t.Error("no listed verdicts recorded")
	}
	if s := snap.Find("daas_screen_duration_seconds"); s == nil || s.Hist == nil || s.Hist.Count == 0 {
		t.Error("no screening latency recorded")
	}
}

// TestEngineBeforeFirstSwap: a fresh engine lists nothing instead of
// crashing.
func TestEngineBeforeFirstSwap(t *testing.T) {
	eng := screen.NewEngine(nil)
	if _, ok := eng.Screen(addr(1)); ok {
		t.Error("empty engine listed an address")
	}
	if eng.ScreenDomain("evil.example") {
		t.Error("empty engine listed a domain")
	}
	if eng.Snapshot() != nil {
		t.Error("expected nil snapshot before first swap")
	}
}
