package screen

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethtypes"
)

// Compile builds a snapshot from the pipeline's outputs: every dataset
// account with its Table 1 partition as the reason, family names and
// taint flags from the §7.1 clustering (families may be nil when
// clustering was skipped), and the §8.2 detector's confirmed phishing
// domains. This is the one source of truth both the wallet guard and
// the screening RPC serve from.
func Compile(ds *core.Dataset, families []*cluster.Family, phishingDomains []string) *Snapshot {
	b := NewBuilder()
	type famInfo struct {
		name    string
		tainted bool
	}
	famOf := make(map[ethtypes.Address]famInfo)
	for _, fam := range families {
		info := famInfo{name: fam.Name, tainted: fam.Tainted}
		for _, a := range fam.Operators {
			famOf[a] = info
		}
		for _, a := range fam.Contracts {
			famOf[a] = info
		}
		for _, a := range fam.Affiliates {
			famOf[a] = info
		}
	}
	add := func(a ethtypes.Address, kind Kind, reason string, staticFlagged bool) {
		fi := famOf[a]
		b.Add(Record{
			Address:       a,
			Kind:          kind,
			Reason:        reason,
			Family:        fi.name,
			Tainted:       fi.tainted,
			StaticFlagged: staticFlagged,
		})
	}
	if ds != nil {
		for _, rec := range ds.SortedContracts() {
			add(rec.Address, KindContract, ReasonContract, rec.StaticFlagged)
		}
		for _, rec := range ds.SortedOperators() {
			add(rec.Address, KindOperator, ReasonOperator, false)
		}
		for _, rec := range ds.SortedAffiliates() {
			add(rec.Address, KindAffiliate, ReasonAffiliate, false)
		}
	}
	for _, d := range phishingDomains {
		b.AddDomain(d)
	}
	return b.Build()
}
