// Package daas is the public API of the Drainer-as-a-Service
// measurement library — a reproduction of "Unmasking the Shadow
// Economy: A Deep Dive into Drainer-as-a-Service Phishing on Ethereum"
// (IMC 2025).
//
// A Client wraps a chain data source (in-process simulator or JSON-RPC
// endpoint), a public label directory, and a price oracle, and exposes
// the paper's pipeline: profit-sharing classification and snowball
// dataset construction (§5), sampling validation (§5.2), family
// clustering (§7), and the §6 measurement suite.
//
//	client := daas.New(source, labelDir, oracle)
//	study, err := client.Study()
//	// study.Dataset, study.Families, study.Victims, ...
package daas

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ethtypes"
	"repro/internal/fetchcache"
	"repro/internal/integrity"
	"repro/internal/labels"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/prices"
	"repro/internal/report"
	"repro/internal/retry"
	"repro/internal/rpc"
)

// Re-exported core types, so downstream users import only this
// package.
type (
	// Dataset is the recovered DaaS dataset (paper Table 1).
	Dataset = core.Dataset
	// Stats summarizes dataset sizes.
	Stats = core.Stats
	// Split is one detected profit-sharing event.
	Split = core.Split
	// Classifier is the §5.1 Step 2 profit-sharing transaction
	// classifier.
	Classifier = core.Classifier
	// ValidationReport is the §5.2 sampling validation result.
	ValidationReport = core.ValidationReport
	// Family is one clustered DaaS family (§7.1).
	Family = cluster.Family
	// ChainSource abstracts chain access.
	ChainSource = core.ChainSource
	// VictimReport, OperatorReport, AffiliateReport and FamilyRow carry
	// the §6 measurement results.
	VictimReport    = measure.VictimReport
	OperatorReport  = measure.OperatorReport
	AffiliateReport = measure.AffiliateReport
	FamilyRow       = measure.FamilyRow
	// Totals is the §5.2 headline (operator/affiliate USD, victims).
	Totals = measure.Totals
	// RatioShare is one §4.3 ratio-distribution row.
	RatioShare = measure.RatioShare
)

// Client bundles the inputs of the measurement pipeline.
type Client struct {
	source core.ChainSource
	labels *labels.Directory
	oracle *prices.Oracle

	// Classifier lets callers tune ratio set and tolerance before
	// calling BuildDataset.
	Classifier Classifier
	// Concurrency sets the parallel frontier scanners and fetch workers
	// of the dataset build (0 or 1 = fully serial). The dataset is
	// byte-identical at any setting; concurrency only buys wall-clock
	// against high-latency sources.
	Concurrency int
	// CacheSize, when positive, interposes a sharded single-flight
	// transaction+receipt cache of that many entries between the
	// pipeline and the chain source, so overlapping scans and repeat
	// expansion passes never fetch the same hash twice.
	CacheSize int
	// RetryPolicy, when set, retries transient chain-source failures
	// (timeouts, 5xx, 429, resets) with deterministic exponential
	// backoff, optionally behind a circuit breaker. It wraps the source
	// between the cache and the per-method metrics, so retried attempts
	// are counted and failed results are never cached.
	RetryPolicy *retry.Policy
	// CheckpointPath, when set, makes BuildDataset persist its state
	// atomically to this file at iteration boundaries, so an
	// interrupted build can continue with Resume to a byte-identical
	// dataset.
	CheckpointPath string
	// CheckpointEvery writes a checkpoint every N expansion iterations
	// (default 1).
	CheckpointEvery int
	// Resume restores CheckpointPath (when the file exists) and
	// continues the build from it.
	Resume bool
	// MaxRefetch overrides the integrity layer's per-record re-fetch
	// allowance (default integrity.DefaultMaxRefetch).
	MaxRefetch int
	// MaxQuarantine, when positive, aborts the run once total
	// quarantine rejections exceed it (integrity.ErrBudgetExceeded) —
	// the -max-quarantine CLI knob.
	MaxQuarantine int64
	// Logger receives structured pipeline progress events; when nil the
	// legacy Trace callback (if any) is adapted instead.
	Logger *obs.Logger
	// Metrics, when set, receives per-stage counters and latency
	// histograms from every pipeline layer; the chain source is then
	// transparently wrapped so per-method request metrics are recorded
	// whether it is in-process or remote.
	Metrics *obs.Registry
	// Spans, when set, records hierarchical tracing spans across the
	// dataset build.
	Spans *obs.Recorder
	// Trace, when set, receives pipeline progress lines. Deprecated
	// shim: new code should set Logger.
	Trace func(format string, args ...any)

	// integrityOnce latches the shared integrity decorator: one instance
	// serves every pipeline stage, so its transaction pins and permanent
	// quarantine persist from build through clustering and measurement.
	integrityOnce sync.Once
	integritySrc  *integrity.Source
	coverage      *core.Coverage
}

// New builds a client from explicit components.
func New(source core.ChainSource, dir *labels.Directory, oracle *prices.Oracle) *Client {
	return &Client{source: source, labels: dir, oracle: oracle}
}

// Dial connects to a JSON-RPC chain endpoint (see cmd/chainsim),
// downloading the public label directory from the same server. The
// connection retries transient failures under the default policy —
// live gateways shed load routinely, and a cold dial is exactly when a
// 503 is most likely.
func Dial(url string) (*Client, error) {
	rc := rpc.NewClient(url)
	rc.Retry = retry.Default()
	if _, err := rc.BlockNumber(); err != nil {
		return nil, fmt.Errorf("daas: connecting to %s: %w", url, err)
	}
	dir, err := rc.FetchLabels()
	if err != nil {
		return nil, fmt.Errorf("daas: fetching labels: %w", err)
	}
	return New(rc, dir, prices.New()), nil
}

// Oracle returns the client's price oracle for registration of token
// quotes.
func (c *Client) Oracle() *prices.Oracle { return c.oracle }

// Source returns the underlying chain source.
func (c *Client) Source() core.ChainSource { return c.source }

// Labels returns the public label directory.
func (c *Client) Labels() *labels.Directory { return c.labels }

// BuildDataset runs seed collection and snowball expansion (§5.1).
func (c *Client) BuildDataset() (*Dataset, error) {
	// Dial attaches the default retry policy before the caller can set
	// Metrics; wire the registry in now so daas_retry_* covers the RPC
	// transport too.
	if rc, ok := c.source.(*rpc.Client); ok && rc.Retry != nil && rc.Retry.Metrics == nil {
		rc.Retry.Metrics = c.Metrics
	}
	p := &core.Pipeline{
		Source:          c.pipelineSource(),
		Labels:          c.labels,
		Classifier:      c.Classifier,
		Concurrency:     c.Concurrency,
		CheckpointPath:  c.CheckpointPath,
		CheckpointEvery: c.CheckpointEvery,
		Resume:          c.Resume,
		Quarantine:      c.integritySource().Quarantine(),
		Coverage:        c.coverageLedger(),
		Logger:          c.Logger,
		Metrics:         c.Metrics,
		Spans:           c.Spans,
		Trace:           c.Trace,
	}
	return p.Build()
}

// pipelineSource layers the build decorators: metrics innermost (so
// daas_chain_* counts real fetches, not cache hits), retries next
// (each wire attempt is counted; an exhausted retry surfaces one
// failure), integrity validation above the retries (every re-fetch of
// a corrupt record spends real wire attempts), the fetch cache
// outermost (so only validated records are ever cached, a
// failed-then-retried fetch is never cached, and a cache hit spends no
// retry budget).
func (c *Client) pipelineSource() core.ChainSource {
	src := core.ChainSource(c.integritySource())
	if c.CacheSize > 0 {
		src = fetchcache.New(src, c.CacheSize, c.Metrics)
	}
	return src
}

// integritySource lazily builds the shared validation decorator over
// retry-wrapped, instrumented chain access.
func (c *Client) integritySource() *integrity.Source {
	c.integrityOnce.Do(func() {
		src := c.instrumentedSource()
		if c.RetryPolicy != nil {
			src = retry.WrapSource(src, c.RetryPolicy)
		}
		s := integrity.Wrap(src, nil, c.Metrics)
		s.MaxRefetch = c.MaxRefetch
		s.MaxQuarantine = c.MaxQuarantine
		c.integritySrc = s
	})
	return c.integritySrc
}

// coverageLedger lazily builds the client's completeness ledger.
func (c *Client) coverageLedger() *core.Coverage {
	if c.coverage == nil {
		c.coverage = core.NewCoverage()
	}
	return c.coverage
}

// instrumentedSource wraps the chain source with per-method request
// metrics when observability is enabled. Source() keeps returning the
// raw source, so type assertions on it (e.g. for local-chain access)
// are unaffected.
func (c *Client) instrumentedSource() core.ChainSource {
	if c.Metrics == nil {
		return c.source
	}
	return core.NewInstrumentedSource(c.source, c.Metrics)
}

// Validate runs the §5.2 sampling validation over a dataset. Reviews
// go through the shared integrity source, so a record proven rotten
// during the build is skipped (and counted) rather than re-trusted.
func (c *Client) Validate(ds *Dataset) (*ValidationReport, error) {
	v := core.Validator{Source: c.integritySource(), SamplePerAccount: 10}
	return v.Validate(ds)
}

// Cluster groups the dataset into DaaS families (§7.1). Families whose
// evidence touched quarantined records — during clustering itself or
// through a build-degraded operator — come back flagged Tainted.
func (c *Client) Cluster(ds *Dataset) ([]*Family, error) {
	degraded := make(map[ethtypes.Address]bool)
	for a := range c.coverageLedger().Stats().Degraded {
		degraded[a] = true
	}
	cl := cluster.Clusterer{
		Source:   c.integritySource(),
		Labels:   c.labels,
		Metrics:  c.Metrics,
		Degraded: degraded,
	}
	return cl.Cluster(ds)
}

// Quarantine exposes the shared integrity store (reason-coded
// rejection counts, permanent quarantines, export).
func (c *Client) Quarantine() *integrity.Quarantine {
	return c.integritySource().Quarantine()
}

// Coverage returns the completeness ledger of the most recent build.
func (c *Client) Coverage() core.CoverageStats {
	return c.coverageLedger().Stats()
}

// Manifest assembles the completeness manifest for a finished run.
// study may be nil when only a dataset was built.
func (c *Client) Manifest(study *Study) report.Manifest {
	q := c.Quarantine()
	cov := c.Coverage()
	m := report.Manifest{
		TxFetched:       cov.TxFetched,
		TxQuarantined:   cov.TxQuarantined,
		TxPermanent:     int64(q.PermanentCount()),
		Violations:      q.Counts(),
		AccountsScanned: cov.AccountsScanned,
	}
	for _, a := range cov.DegradedAccounts() {
		m.DegradedAccounts = append(m.DegradedAccounts, a.Hex())
	}
	m.AccountsDegraded = len(m.DegradedAccounts)
	if rc, ok := c.source.(*rpc.Client); ok {
		m.LabelsAccepted = rc.LabelsAccepted()
		m.LabelRejectReasons = rc.LabelRejects()
		for _, n := range m.LabelRejectReasons {
			m.LabelsRejected += n
		}
	} else if c.labels != nil {
		m.LabelsAccepted = int64(c.labels.Count())
	}
	if study != nil {
		m.FamiliesTotal = len(study.Families)
		for _, fam := range study.Families {
			if fam.Tainted {
				m.FamiliesTainted++
			}
		}
	}
	return m
}

// Study is the complete measurement result for one dataset build.
type Study struct {
	Dataset    *Dataset
	Validation *ValidationReport
	Families   []*Family
	FamilyRows []FamilyRow
	Totals     Totals
	Victims    VictimReport
	Operators  OperatorReport
	Affiliates AffiliateReport
	Ratios     []RatioShare
	// EtherscanCoverage is the §8.1 label-coverage fraction.
	EtherscanCoverage float64
}

// StudyOptions tune a full run.
type StudyOptions struct {
	// DatasetEnd is the inactivity cutoff for operator lifecycles;
	// defaults to the newest split timestamp.
	DatasetEnd time.Time
	// PrimaryContractTxs is the Table-2 primary-contract threshold
	// (default measure.MinPrimaryTxs).
	PrimaryContractTxs int
	// SkipValidation skips the §5.2 re-review (it rescans a large
	// sample; benchmarks of other stages may skip it).
	SkipValidation bool
}

// Study runs the full pipeline: dataset, validation, clustering, and
// every §6 analysis.
func (c *Client) Study() (*Study, error) {
	return c.StudyWith(StudyOptions{})
}

// StudyWith runs the full pipeline with options.
func (c *Client) StudyWith(opts StudyOptions) (*Study, error) {
	if c.oracle == nil {
		return nil, fmt.Errorf("daas: client has no price oracle")
	}
	ctx := context.Background()
	if c.Spans != nil {
		ctx = obs.WithRecorder(ctx, c.Spans)
	}
	ds, err := c.BuildDataset()
	if err != nil {
		return nil, fmt.Errorf("daas: building dataset: %w", err)
	}
	out := &Study{Dataset: ds}
	if !opts.SkipValidation {
		_, sp := obs.Start(ctx, "study.validate")
		out.Validation, err = c.Validate(ds)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("daas: validating: %w", err)
		}
	}
	_, sp := obs.Start(ctx, "study.cluster")
	out.Families, err = c.Cluster(ds)
	sp.SetAttr("families", len(out.Families))
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("daas: clustering: %w", err)
	}
	_, sp = obs.Start(ctx, "study.measure")
	an := &measure.Analyzer{Source: c.integritySource(), Oracle: c.oracle, Labels: c.labels}
	corpus, err := an.BuildCorpus(ds)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("daas: measuring: %w", err)
	}
	end := opts.DatasetEnd
	if end.IsZero() {
		for _, splits := range ds.Splits {
			for _, sp := range splits {
				if sp.Time.After(end) {
					end = sp.Time
				}
			}
		}
	}
	threshold := opts.PrimaryContractTxs
	if threshold <= 0 {
		threshold = measure.MinPrimaryTxs
	}
	out.Totals = corpus.Totals()
	out.Victims = corpus.Victims()
	out.Operators = corpus.Operators(end)
	out.Affiliates = corpus.Affiliates()
	out.Ratios = corpus.RatioDistribution()
	out.FamilyRows = corpus.FamilyTable(out.Families, threshold)
	if c.labels != nil {
		out.EtherscanCoverage = corpus.LabelCoverage(func(a ethtypes.Address) bool {
			return c.labels.Has(a, labels.SourceEtherscan)
		})
	}
	return out, nil
}
