package daas_test

import (
	"net/http/httptest"
	"testing"

	"repro/daas"
	"repro/internal/core"
	"repro/internal/rpc"
	"repro/internal/worldgen"
)

var world = func() *worldgen.World {
	w, err := worldgen.Generate(worldgen.TestConfig(31337))
	if err != nil {
		panic(err)
	}
	return w
}()

func localClient() *daas.Client {
	return daas.New(core.LocalSource{Chain: world.Chain}, world.Labels, world.Oracle)
}

func TestStudyEndToEnd(t *testing.T) {
	study, err := localClient().StudyWith(daas.StudyOptions{
		DatasetEnd:         worldgen.DatasetEnd,
		PrimaryContractTxs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if study.Dataset.Stats().Contracts == 0 {
		t.Fatal("empty dataset")
	}
	if study.Validation == nil || len(study.Validation.FalsePositives) != 0 {
		t.Errorf("validation: %+v", study.Validation)
	}
	if len(study.Families) != 9 {
		t.Errorf("families = %d", len(study.Families))
	}
	if len(study.FamilyRows) != len(study.Families) {
		t.Error("family rows mismatch")
	}
	if study.Totals.OperatorUSD <= 0 || study.Totals.AffiliateUSD <= study.Totals.OperatorUSD {
		t.Errorf("totals implausible: %+v", study.Totals)
	}
	if study.Victims.Victims == 0 || study.Operators.Operators == 0 || study.Affiliates.Affiliates == 0 {
		t.Error("empty measurement reports")
	}
	if len(study.Ratios) == 0 || study.Ratios[0].PerMille != 200 {
		t.Errorf("ratio distribution head: %+v", study.Ratios)
	}
	if study.EtherscanCoverage <= 0 || study.EtherscanCoverage >= 1 {
		t.Errorf("coverage = %f", study.EtherscanCoverage)
	}
}

func TestDialAndRemoteStudy(t *testing.T) {
	srv := httptest.NewServer(rpc.NewServer(world.Chain, world.Labels))
	defer srv.Close()

	client, err := daas.Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	// Register the same token quotes so USD valuations match.
	for i, tok := range world.TokenAddrs {
		tp := world.Plan.Tokens[i]
		q, _ := world.Oracle.QuoteOf(tok)
		client.Oracle().Register(tok, q)
		_ = tp
	}
	for i, col := range world.NFTAddrs {
		q, _ := world.Oracle.QuoteOf(col)
		client.Oracle().Register(col, q)
		_ = i
	}
	remote, err := client.StudyWith(daas.StudyOptions{
		DatasetEnd:         worldgen.DatasetEnd,
		PrimaryContractTxs: 2,
		SkipValidation:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	local, err := localClient().StudyWith(daas.StudyOptions{
		DatasetEnd:         worldgen.DatasetEnd,
		PrimaryContractTxs: 2,
		SkipValidation:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if remote.Dataset.Stats() != local.Dataset.Stats() {
		t.Errorf("remote %+v != local %+v", remote.Dataset.Stats(), local.Dataset.Stats())
	}
	if remote.Totals.Victims != local.Totals.Victims {
		t.Errorf("victims differ: %d vs %d", remote.Totals.Victims, local.Totals.Victims)
	}
}

func TestDialBadEndpoint(t *testing.T) {
	if _, err := daas.Dial("http://127.0.0.1:1"); err == nil {
		t.Error("Dial to dead endpoint succeeded")
	}
}

func TestStudyWithoutOracle(t *testing.T) {
	c := daas.New(core.LocalSource{Chain: world.Chain}, world.Labels, nil)
	if _, err := c.Study(); err == nil {
		t.Error("study without oracle succeeded")
	}
}
