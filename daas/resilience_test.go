package daas_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/daas"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/retry"
)

// quickPolicy retries without real sleeps, keeping the matrix fast.
func quickPolicy(reg *obs.Registry) *retry.Policy {
	return &retry.Policy{
		MaxAttempts: 6,
		Metrics:     reg,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

func exportWith(t *testing.T, src core.ChainSource, configure func(*daas.Client)) []byte {
	t.Helper()
	c := daas.New(src, world.Labels, world.Oracle)
	if configure != nil {
		configure(c)
	}
	ds, err := c.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultMatrixBuildIsByteIdentical runs the snowball build under
// several seeded transient-fault schedules, with the retry policy
// between the fault injector and the pipeline. Every faulted run must
// converge to the fault-free export byte for byte — transient faults
// cost wall-clock, never data.
func TestFaultMatrixBuildIsByteIdentical(t *testing.T) {
	clean := exportWith(t, core.LocalSource{Chain: world.Chain}, nil)
	if len(clean) == 0 {
		t.Fatal("empty clean export")
	}
	for _, seed := range []uint64{1, 2, 3} {
		reg := obs.NewRegistry()
		inj := faults.NewInjector(faults.Plan{Seed: seed, Rate: 0.05}, reg)
		src := faults.WrapSource(core.LocalSource{Chain: world.Chain}, inj)
		got := exportWith(t, src, func(c *daas.Client) {
			c.RetryPolicy = quickPolicy(reg)
			c.CacheSize = 1 << 12
			c.Concurrency = 4
			c.Metrics = reg
		})
		if !bytes.Equal(got, clean) {
			t.Errorf("seed %d: faulted export differs from clean build (%d vs %d bytes)", seed, len(got), len(clean))
		}
		if inj.Faults() == 0 {
			t.Errorf("seed %d: schedule injected no faults; the matrix tested nothing", seed)
		}
	}
}

// TestFaultedCheckpointResumeThroughClient exercises the full wiring a
// CLI run uses: a build with fault injection and checkpointing dies on
// a planted fatal fault; a second Client with -resume semantics
// finishes the build to the byte-identical export.
func TestFaultedCheckpointResumeThroughClient(t *testing.T) {
	clean := exportWith(t, core.LocalSource{Chain: world.Chain}, nil)
	path := filepath.Join(t.TempDir(), "daas.ckpt")

	// Count ops to plant the kill late in the run.
	counter := faults.NewInjector(faults.Plan{Seed: 9}, nil)
	exportWith(t, faults.WrapSource(core.LocalSource{Chain: world.Chain}, counter), nil)
	kill := counter.Ops() - 1

	inj := faults.NewInjector(faults.Plan{Seed: 9, Rate: 0.02, FatalAfterOps: kill}, nil)
	src := faults.WrapSource(core.LocalSource{Chain: world.Chain}, inj)
	c := daas.New(src, world.Labels, world.Oracle)
	c.RetryPolicy = quickPolicy(nil)
	c.CheckpointPath = path
	if _, err := c.BuildDataset(); err == nil {
		t.Fatal("build survived its planted fatal fault")
	}

	got := exportWith(t, core.LocalSource{Chain: world.Chain}, func(c *daas.Client) {
		c.CheckpointPath = path
		c.Resume = true
	})
	if !bytes.Equal(got, clean) {
		t.Errorf("resumed export differs from clean build (%d vs %d bytes)", len(got), len(clean))
	}
}
