package daas_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/daas"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/retry"
)

// quickPolicy retries without real sleeps, keeping the matrix fast.
func quickPolicy(reg *obs.Registry) *retry.Policy {
	return &retry.Policy{
		MaxAttempts: 6,
		Metrics:     reg,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
}

func exportWith(t *testing.T, src core.ChainSource, configure func(*daas.Client)) []byte {
	t.Helper()
	c := daas.New(src, world.Labels, world.Oracle)
	if configure != nil {
		configure(c)
	}
	ds, err := c.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFaultMatrixBuildIsByteIdentical runs the snowball build under
// several seeded transient-fault schedules, with the retry policy
// between the fault injector and the pipeline. Every faulted run must
// converge to the fault-free export byte for byte — transient faults
// cost wall-clock, never data.
func TestFaultMatrixBuildIsByteIdentical(t *testing.T) {
	clean := exportWith(t, core.LocalSource{Chain: world.Chain}, nil)
	if len(clean) == 0 {
		t.Fatal("empty clean export")
	}
	for _, seed := range []uint64{1, 2, 3} {
		reg := obs.NewRegistry()
		inj := faults.NewInjector(faults.Plan{Seed: seed, Rate: 0.05}, reg)
		src := faults.WrapSource(core.LocalSource{Chain: world.Chain}, inj)
		got := exportWith(t, src, func(c *daas.Client) {
			c.RetryPolicy = quickPolicy(reg)
			c.CacheSize = 1 << 12
			c.Concurrency = 4
			c.Metrics = reg
		})
		if !bytes.Equal(got, clean) {
			t.Errorf("seed %d: faulted export differs from clean build (%d vs %d bytes)", seed, len(got), len(clean))
		}
		if inj.Faults() == 0 {
			t.Errorf("seed %d: schedule injected no faults; the matrix tested nothing", seed)
		}
	}
}

// TestFaultedCheckpointResumeThroughClient exercises the full wiring a
// CLI run uses: a build with fault injection and checkpointing dies on
// a planted fatal fault; a second Client with -resume semantics
// finishes the build to the byte-identical export.
func TestFaultedCheckpointResumeThroughClient(t *testing.T) {
	clean := exportWith(t, core.LocalSource{Chain: world.Chain}, nil)
	path := filepath.Join(t.TempDir(), "daas.ckpt")

	// Count ops to plant the kill late in the run.
	counter := faults.NewInjector(faults.Plan{Seed: 9}, nil)
	exportWith(t, faults.WrapSource(core.LocalSource{Chain: world.Chain}, counter), nil)
	kill := counter.Ops() - 1

	inj := faults.NewInjector(faults.Plan{Seed: 9, Rate: 0.02, FatalAfterOps: kill}, nil)
	src := faults.WrapSource(core.LocalSource{Chain: world.Chain}, inj)
	c := daas.New(src, world.Labels, world.Oracle)
	c.RetryPolicy = quickPolicy(nil)
	c.CheckpointPath = path
	if _, err := c.BuildDataset(); err == nil {
		t.Fatal("build survived its planted fatal fault")
	}

	got := exportWith(t, core.LocalSource{Chain: world.Chain}, func(c *daas.Client) {
		c.CheckpointPath = path
		c.Resume = true
	})
	if !bytes.Equal(got, clean) {
		t.Errorf("resumed export differs from clean build (%d vs %d bytes)", len(got), len(clean))
	}
}

// corruptionKinds are the data-mangling fault flavors: the read
// succeeds, but the record is wrong.
var corruptionKinds = []faults.Kind{faults.KindCorruptField, faults.KindTruncateLogs, faults.KindStaleReorg}

// TestCorruptionMatrixBuildIsByteIdentical runs the snowball build
// under seeded response corruption. Corrupted responses are errors the
// transport cannot see — only the integrity layer can. Every corrupted
// run must (a) complete without aborting, (b) quarantine the garbage
// with reason codes, and (c) still export byte-identically to the
// clean build: corruption costs re-fetches, never data.
func TestCorruptionMatrixBuildIsByteIdentical(t *testing.T) {
	clean := exportWith(t, core.LocalSource{Chain: world.Chain}, nil)
	if len(clean) == 0 {
		t.Fatal("empty clean export")
	}
	for _, seed := range []uint64{1, 2, 3} {
		reg := obs.NewRegistry()
		inj := faults.NewInjector(faults.Plan{Seed: seed, Rate: 0.05, Kinds: corruptionKinds}, reg)
		src := faults.WrapSource(core.LocalSource{Chain: world.Chain}, inj)
		var client *daas.Client
		got := exportWith(t, src, func(c *daas.Client) {
			c.CacheSize = 1 << 12
			c.Concurrency = 4
			c.Metrics = reg
			client = c
		})
		if !bytes.Equal(got, clean) {
			t.Errorf("seed %d: corrupted export differs from clean build (%d vs %d bytes)", seed, len(got), len(clean))
		}
		if inj.Faults() == 0 {
			t.Errorf("seed %d: schedule corrupted nothing; the matrix tested nothing", seed)
		}
		q := client.Quarantine()
		if q.Total() == 0 {
			t.Errorf("seed %d: %d corruptions injected but none quarantined", seed, inj.Faults())
		}
		for key, n := range q.Counts() {
			if n <= 0 {
				t.Errorf("seed %d: non-positive quarantine count for %q", seed, key)
			}
		}
		if client.Manifest(nil).Clean() {
			t.Errorf("seed %d: corrupted run reports a clean manifest", seed)
		}
	}

	// The clean run, by contrast, must report a clean manifest — the
	// -strict contract.
	var cleanClient *daas.Client
	exportWith(t, core.LocalSource{Chain: world.Chain}, func(c *daas.Client) { cleanClient = c })
	if m := cleanClient.Manifest(nil); !m.Clean() {
		t.Errorf("clean run reports a dirty manifest: %+v", m)
	}
}

// TestQuarantinedCheckpointResumeRoundTrip kills a corrupted,
// checkpointing build mid-run and resumes it with a clean source. The
// resumed run must reproduce the clean export AND still carry the
// quarantine records and coverage the interrupted run accumulated —
// resume never launders away evidence of past corruption.
func TestQuarantinedCheckpointResumeRoundTrip(t *testing.T) {
	clean := exportWith(t, core.LocalSource{Chain: world.Chain}, nil)
	path := filepath.Join(t.TempDir(), "daas.ckpt")

	// Count ops under the same corruption plan to plant the kill late.
	counter := faults.NewInjector(faults.Plan{Seed: 11, Rate: 0.05, Kinds: corruptionKinds}, nil)
	exportWith(t, faults.WrapSource(core.LocalSource{Chain: world.Chain}, counter), nil)
	kill := counter.Ops() - 1

	inj := faults.NewInjector(faults.Plan{Seed: 11, Rate: 0.05, Kinds: corruptionKinds, FatalAfterOps: kill}, nil)
	src := faults.WrapSource(core.LocalSource{Chain: world.Chain}, inj)
	c := daas.New(src, world.Labels, world.Oracle)
	c.RetryPolicy = quickPolicy(nil)
	c.CheckpointPath = path
	if _, err := c.BuildDataset(); err == nil {
		t.Fatal("build survived its planted fatal fault")
	}
	if c.Quarantine().Total() == 0 {
		t.Fatal("interrupted run quarantined nothing; the round trip tests nothing")
	}

	var resumed *daas.Client
	got := exportWith(t, core.LocalSource{Chain: world.Chain}, func(c *daas.Client) {
		c.CheckpointPath = path
		c.Resume = true
		resumed = c
	})
	if !bytes.Equal(got, clean) {
		t.Errorf("resumed export differs from clean build (%d vs %d bytes)", len(got), len(clean))
	}
	if resumed.Quarantine().Total() == 0 {
		t.Error("resume discarded the checkpointed quarantine")
	}
	if resumed.Manifest(nil).Clean() {
		t.Error("resumed run reports a clean manifest despite restored quarantine")
	}
}
