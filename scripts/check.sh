#!/usr/bin/env bash
# Tier-2 verification gate. Tier-1 (go build ./... && go test ./...) is
# the minimum bar for every commit; this script layers the slower checks
# on top: vet, the race detector, and the repo's own linter.
#
# Usage: ./scripts/check.sh   (from the repository root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./internal/obs/..."
go test -race ./internal/obs/...

echo "==> go test -race ./internal/core/... ./internal/fetchcache/... ./internal/rpc/..."
go test -race ./internal/core/... ./internal/fetchcache/... ./internal/rpc/...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke: BenchmarkPipelineConcurrency"
go test -run=NONE -bench=BenchmarkPipelineConcurrency -benchtime=1x .

echo "==> fault-matrix smoke: seeded fault schedules must not change the dataset"
go test -count=1 -run 'TestFaultMatrixBuildIsByteIdentical' ./daas/

echo "==> corruption-matrix smoke: injected corruption is quarantined, export stays byte-identical"
go test -count=1 -run 'TestCorruptionMatrixBuildIsByteIdentical' ./daas/

echo "==> checkpoint/resume round trip: killed build resumes byte-identical"
go test -count=1 -run 'TestCheckpointResumeByteIdentical|TestFaultedCheckpointResumeThroughClient' ./internal/core/ ./daas/

echo "==> quarantined checkpoint round trip: resume preserves quarantine and coverage"
go test -count=1 -run 'TestQuarantinedCheckpointResumeRoundTrip' ./daas/

echo "==> integrity fuzz smoke: validators are total over the seed corpus + 10s of new inputs"
go test -count=1 -run=NONE -fuzz 'FuzzValidateRecord' -fuzztime 10s ./internal/integrity/

echo "==> reprolint ./..."
go run ./cmd/reprolint ./...

echo "All tier-2 checks passed."
