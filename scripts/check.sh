#!/usr/bin/env bash
# Tier-2 verification gate. Tier-1 (go build ./... && go test ./...) is
# the minimum bar for every commit; this script layers the slower checks
# on top: vet, the race detector, and the repo's own linter.
#
# Usage: ./scripts/check.sh   (from the repository root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./internal/obs/..."
go test -race ./internal/obs/...

echo "==> go test -race ./internal/core/... ./internal/fetchcache/... ./internal/rpc/..."
go test -race ./internal/core/... ./internal/fetchcache/... ./internal/rpc/...

echo "==> go test -race ./..."
go test -race ./...

echo "==> loadgen smoke: fixed-seed schedules are deterministic, exports stay byte-identical"
go test -count=1 -run 'TestScheduleDeterministic|TestPipelineByteIdentical' ./internal/loadgen/

echo "==> screen race: zero-lock engine and wallet guard under concurrent snapshot swaps"
go test -race -count=1 -run 'TestEngineSwapUnderConcurrentReads|TestGuardConcurrentReload' ./internal/screen/ ./internal/walletguard/

echo "==> screen loadgen: batch schedule deterministic, verdicts byte-identical under swap churn"
go test -count=1 -run 'TestScreenScheduleDeterministic|TestScreenSwapUnderLoadByteIdentical' ./internal/loadgen/

echo "==> radar soak: race-checked daemon over a fault-injected chain with a forced reorg, converging to the batch export"
go test -race -count=1 -run 'TestRadarSoakConcurrent|TestRadarReorgRollback|TestRadarCheckpointResume' ./internal/radar/

echo "==> radar stream: dataset shape deterministic under concurrent screening load"
go test -count=1 -run 'TestRadarStreamDeterministic' ./internal/loadgen/

echo "==> benchdiff self-test: the gate demonstrably fails on an injected slowdown"
go test -count=1 ./cmd/benchdiff/

echo "==> fault-matrix smoke: seeded fault schedules must not change the dataset"
go test -count=1 -run 'TestFaultMatrixBuildIsByteIdentical' ./daas/

echo "==> corruption-matrix smoke: injected corruption is quarantined, export stays byte-identical"
go test -count=1 -run 'TestCorruptionMatrixBuildIsByteIdentical' ./daas/

echo "==> checkpoint/resume round trip: killed build resumes byte-identical"
go test -count=1 -run 'TestCheckpointResumeByteIdentical|TestFaultedCheckpointResumeThroughClient' ./internal/core/ ./daas/

echo "==> quarantined checkpoint round trip: resume preserves quarantine and coverage"
go test -count=1 -run 'TestQuarantinedCheckpointResumeRoundTrip' ./daas/

echo "==> integrity fuzz smoke: validators are total over the seed corpus + 10s of new inputs"
go test -count=1 -run=NONE -fuzz 'FuzzValidateRecord' -fuzztime 10s ./internal/integrity/

echo "==> fingerprint agreement: static fingerprints match dynamic prober verdicts for every style x family"
go test -count=1 -run 'TestFingerprintAgreementMatrix|TestStaticDynamicAgreement' ./internal/contracts/

echo "==> static screen race: concurrent fingerprint screening over a generated world"
go test -race -count=1 -run 'TestStaticScreen|TestAnnotateFingerprints' ./internal/core/

echo "==> pathological bytecode: adversarial jump-dense contracts stay inside the visit budget"
go test -count=1 -run 'TestAnalyzeBudgetedPathological' ./internal/evmstatic/

echo "==> fingerprint fuzz smoke: the static engine is total over the template corpus + 10s of new inputs"
go test -count=1 -run=NONE -fuzz 'FuzzFingerprints' -fuzztime 10s ./internal/evmstatic/

echo "==> rpc hardening: body/batch caps, shedding, deadlines, panic recovery, health probes under race"
go test -race -count=1 -run 'TestBodyCap|TestBatchCap|TestOverloadShed|TestRequestDeadline|TestRadarDeadlineWhileMutexHeld|TestPanicRecovery|TestWriteErrorCounted|TestHealthEndpoints|TestSlowLorisEvicted|TestGracefulServe' ./internal/rpc/

echo "==> rpc fuzz smoke: hardened ServeHTTP is total over the malformed corpus + 10s of new inputs"
go test -count=1 -run=NONE -fuzz 'FuzzServeHTTP' -fuzztime 10s ./internal/rpc/

echo "==> chaos soak: race-checked hardened server under hostile traffic with a mid-run upstream outage"
go test -race -count=1 -run 'TestChaosSoak' ./internal/loadgen/

# ---- Benchmark artifacts + regression gates ------------------------
# Each suite is emitted as a daas-bench/v1 JSON artifact and gated
# against the committed baseline in scripts/bench/. Timing metrics get
# a generous 5x tolerance (CI machines vary); shape metrics (profit-txs
# and friends) are deterministic and gate tight. A missing baseline
# bootstraps itself; record intentional changes with
#   go run ./cmd/benchdiff gate -current BENCH_x.json \
#     -baseline scripts/bench/BENCH_x.baseline.json -update

echo "==> bench: pipeline suite -> BENCH_pipeline.json"
go test -run=NONE -bench 'BenchmarkPipelineConcurrency|BenchmarkLoadgenSource|BenchmarkLoadgenOpenLoop|BenchmarkLoadgenPipeline' \
  -benchtime=1x . ./internal/loadgen/ \
  | tee /dev/stderr \
  | go run ./cmd/benchdiff emit -suite pipeline -o BENCH_pipeline.json
go run ./cmd/benchdiff gate -current BENCH_pipeline.json \
  -baseline scripts/bench/BENCH_pipeline.baseline.json -tolerance 5

echo "==> bench: rpc suite -> BENCH_rpc.json"
go test -run=NONE -bench 'BenchmarkLoadgenRPC' -benchtime=1x ./internal/loadgen/ \
  | tee /dev/stderr \
  | go run ./cmd/benchdiff emit -suite rpc -o BENCH_rpc.json
go run ./cmd/benchdiff gate -current BENCH_rpc.json \
  -baseline scripts/bench/BENCH_rpc.baseline.json -tolerance 5

echo "==> bench: static suite -> BENCH_static.json"
go test -run=NONE -bench 'BenchmarkStaticAnalyze' -benchtime=50x ./internal/evmstatic/ \
  | tee /dev/stderr \
  | go run ./cmd/benchdiff emit -suite static -o BENCH_static.json
go run ./cmd/benchdiff gate -current BENCH_static.json \
  -baseline scripts/bench/BENCH_static.baseline.json -tolerance 5

echo "==> bench: screen suite -> BENCH_screen.json"
go test -run=NONE -bench 'BenchmarkScreenBatch' -benchtime=1x ./internal/loadgen/ \
  | tee /dev/stderr \
  | go run ./cmd/benchdiff emit -suite screen -o BENCH_screen.json
go run ./cmd/benchdiff gate -current BENCH_screen.json \
  -baseline scripts/bench/BENCH_screen.baseline.json -tolerance 5

echo "==> bench: radar suite -> BENCH_radar.json"
go test -run=NONE -bench 'BenchmarkRadarStream' -benchtime=1x ./internal/loadgen/ \
  | tee /dev/stderr \
  | go run ./cmd/benchdiff emit -suite radar -o BENCH_radar.json
go run ./cmd/benchdiff gate -current BENCH_radar.json \
  -baseline scripts/bench/BENCH_radar.baseline.json -tolerance 5

echo "==> bench: chaos suite -> BENCH_chaos.json"
go test -run=NONE -bench 'BenchmarkChaos' -benchtime=1x ./internal/loadgen/ \
  | tee /dev/stderr \
  | go run ./cmd/benchdiff emit -suite chaos -o BENCH_chaos.json
go run ./cmd/benchdiff gate -current BENCH_chaos.json \
  -baseline scripts/bench/BENCH_chaos.baseline.json -tolerance 5

echo "==> reprolint ./..."
go run ./cmd/reprolint ./...

echo "All tier-2 checks passed."
