#!/usr/bin/env bash
# Tier-2 verification gate. Tier-1 (go build ./... && go test ./...) is
# the minimum bar for every commit; this script layers the slower checks
# on top: vet, the race detector, and the repo's own linter.
#
# Usage: ./scripts/check.sh   (from the repository root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./internal/obs/..."
go test -race ./internal/obs/...

echo "==> go test -race ./internal/core/... ./internal/fetchcache/... ./internal/rpc/..."
go test -race ./internal/core/... ./internal/fetchcache/... ./internal/rpc/...

echo "==> go test -race ./..."
go test -race ./...

echo "==> bench smoke: BenchmarkPipelineConcurrency"
go test -run=NONE -bench=BenchmarkPipelineConcurrency -benchtime=1x .

echo "==> fault-matrix smoke: seeded fault schedules must not change the dataset"
go test -count=1 -run 'TestFaultMatrixBuildIsByteIdentical' ./daas/

echo "==> corruption-matrix smoke: injected corruption is quarantined, export stays byte-identical"
go test -count=1 -run 'TestCorruptionMatrixBuildIsByteIdentical' ./daas/

echo "==> checkpoint/resume round trip: killed build resumes byte-identical"
go test -count=1 -run 'TestCheckpointResumeByteIdentical|TestFaultedCheckpointResumeThroughClient' ./internal/core/ ./daas/

echo "==> quarantined checkpoint round trip: resume preserves quarantine and coverage"
go test -count=1 -run 'TestQuarantinedCheckpointResumeRoundTrip' ./daas/

echo "==> integrity fuzz smoke: validators are total over the seed corpus + 10s of new inputs"
go test -count=1 -run=NONE -fuzz 'FuzzValidateRecord' -fuzztime 10s ./internal/integrity/

echo "==> fingerprint agreement: static fingerprints match dynamic prober verdicts for every style x family"
go test -count=1 -run 'TestFingerprintAgreementMatrix|TestStaticDynamicAgreement' ./internal/contracts/

echo "==> static screen race: concurrent fingerprint screening over a generated world"
go test -race -count=1 -run 'TestStaticScreen|TestAnnotateFingerprints' ./internal/core/

echo "==> pathological bytecode: adversarial jump-dense contracts stay inside the visit budget"
go test -count=1 -run 'TestAnalyzeBudgetedPathological' ./internal/evmstatic/

echo "==> fingerprint fuzz smoke: the static engine is total over the template corpus + 10s of new inputs"
go test -count=1 -run=NONE -fuzz 'FuzzFingerprints' -fuzztime 10s ./internal/evmstatic/

echo "==> bench: BenchmarkStaticAnalyze -> BENCH_static.json"
go test -run=NONE -bench 'BenchmarkStaticAnalyze' -benchtime=50x ./internal/evmstatic/ \
  | tee /dev/stderr \
  | awk '
    BEGIN { print "[" }
    /^BenchmarkStaticAnalyze\// {
      if (n++) printf ",\n"
      printf "  {\"name\":\"%s\",\"iterations\":%s", $1, $2
      for (i = 3; i + 1 <= NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9_]/, "_", unit)
        printf ",\"%s\":%s", unit, $i
      }
      printf "}"
    }
    END { print "\n]" }' > BENCH_static.json

echo "==> reprolint ./..."
go run ./cmd/reprolint ./...

echo "All tier-2 checks passed."
