package repro

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"repro/daas"
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/ct"
	"repro/internal/ethtypes"
	"repro/internal/rpc"
	"repro/internal/sitehunt"
	"repro/internal/toolkit"
	"repro/internal/walletguard"
	"repro/internal/website"
	"repro/internal/worldgen"
)

// TestIntegrationFullLoop drives the complete system the way an
// operator would: simulate a chain, serve it over JSON-RPC, run the
// measurement study remotely, export and re-import the dataset, feed
// it to the wallet guard, and block a live phishing transaction.
func TestIntegrationFullLoop(t *testing.T) {
	world, ds, _, _ := fixture(&testing.B{})

	// Serve over RPC; study remotely.
	srv := httptest.NewServer(rpc.NewServer(world.Chain, world.Labels))
	defer srv.Close()
	client, err := daas.Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	remoteDS, err := client.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	if remoteDS.Stats() != ds.Stats() {
		t.Fatalf("remote dataset %+v != local %+v", remoteDS.Stats(), ds.Stats())
	}

	// Export / import round trip feeds downstream tooling.
	var buf bytes.Buffer
	if err := remoteDS.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	imported, err := core.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if imported.AccountCount() != remoteDS.AccountCount() {
		t.Fatal("dataset account count changed in export round trip")
	}

	// The imported dataset arms a wallet guard, which must block a
	// replay of every planted victim-signed phishing transaction it
	// screens.
	guard := walletguard.New(world.Chain)
	guard.LoadDataset(imported)
	blocked, screened := 0, 0
	for h := range world.Truth.ProfitTxs {
		tx, err := world.Chain.Transaction(h)
		if err != nil {
			t.Fatal(err)
		}
		if _, isVictim := world.Truth.VictimLossUSD[tx.From]; !isVictim {
			continue
		}
		screened++
		if guard.Screen(tx, "").Block {
			blocked++
		}
		if screened >= 40 {
			break
		}
	}
	if screened == 0 || blocked != screened {
		t.Fatalf("guard blocked %d of %d screened phishing txs", blocked, screened)
	}
}

// TestIntegrationSiteHuntFeedsGuard connects the §8.2 detector's output
// to the §9 guard's domain blacklist.
func TestIntegrationSiteHuntFeedsGuard(t *testing.T) {
	world, _, _, _ := fixture(&testing.B{})

	fleet := website.GenerateFleet(website.FleetConfig{Seed: 3, Phishing: 40, Benign: 20, Bait: 8})
	hostSrv := httptest.NewServer(website.NewHost(fleet))
	defer hostSrv.Close()
	log, err := ct.NewLog()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fleet {
		if s.HTTPS {
			if _, err := log.Issue([]string{s.Domain}, s.Issued); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctSrv := httptest.NewServer(log.Handler())
	defer ctSrv.Close()

	det := &sitehunt.Detector{
		CT:      ct.NewClient(ctSrv.URL),
		Crawler: crawler.New(hostSrv.URL),
		Corpus:  toolkit.BuildCorpus(3, 60),
	}
	rep, err := det.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected() == 0 {
		t.Fatal("detector found nothing")
	}

	guard := walletguard.New(world.Chain)
	for _, d := range rep.Detections {
		guard.BlockDomain(d.Domain)
	}
	// A signature request originating from any detected domain is
	// refused regardless of transaction content.
	v := guard.Screen(benignTx(), rep.Detections[0].Domain)
	if !v.Block {
		t.Error("signature from detected phishing domain not blocked")
	}
	// Benign origins pass.
	if v := guard.Screen(benignTx(), "gardenkitchen.com"); v.Block {
		t.Error("benign origin blocked")
	}
}

// benignTx builds a harmless pending transaction for domain-only
// checks.
func benignTx() *chain.Transaction {
	from := ethtypes.Addr("0x0900000000000000000000000000000000000000")
	to := ethtypes.Addr("0x0000000000000000000000000000000000000001")
	return &chain.Transaction{From: from, To: &to}
}

var _ = worldgen.DatasetEnd
