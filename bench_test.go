// Package repro benchmarks regenerate every table and figure of the
// paper (see DESIGN.md §4 for the experiment index) and report the
// headline shape metrics alongside timing. Run with:
//
//	go test -bench=. -benchmem
//
// The full-scale numbers live in EXPERIMENTS.md (produced by
// cmd/repro); these benches run at a reduced scale so the whole suite
// finishes in seconds while exercising identical code paths.
package repro

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/cluster"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/ct"
	"repro/internal/domains"
	"repro/internal/ethtypes"
	"repro/internal/measure"
	"repro/internal/sitehunt"
	"repro/internal/toolkit"
	"repro/internal/website"
	"repro/internal/worldgen"
)

// benchScale keeps full-suite time reasonable while preserving shapes.
const benchScale = 0.02

var (
	fixOnce   sync.Once
	fixWorld  *worldgen.World
	fixDS     *core.Dataset
	fixCorpus *measure.Corpus
	fixFams   []*cluster.Family
)

func fixture(b *testing.B) (*worldgen.World, *core.Dataset, *measure.Corpus, []*cluster.Family) {
	b.Helper()
	fixOnce.Do(func() {
		cfg := worldgen.DefaultConfig(1910)
		cfg.Scale = benchScale
		w, err := worldgen.Generate(cfg)
		if err != nil {
			panic(err)
		}
		p := &core.Pipeline{Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels}
		ds, err := p.Build()
		if err != nil {
			panic(err)
		}
		an := &measure.Analyzer{Source: core.LocalSource{Chain: w.Chain}, Oracle: w.Oracle, Labels: w.Labels}
		corpus, err := an.BuildCorpus(ds)
		if err != nil {
			panic(err)
		}
		cl := cluster.Clusterer{Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels}
		fams, err := cl.Cluster(ds)
		if err != nil {
			panic(err)
		}
		fixWorld, fixDS, fixCorpus, fixFams = w, ds, corpus, fams
	})
	return fixWorld, fixDS, fixCorpus, fixFams
}

// BenchmarkTable1_DatasetConstruction regenerates Table 1: the
// complete seed + snowball pipeline over the world.
func BenchmarkTable1_DatasetConstruction(b *testing.B) {
	w, _, _, _ := fixture(b)
	b.ReportAllocs()
	var stats core.Stats
	for i := 0; i < b.N; i++ {
		p := &core.Pipeline{Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels}
		ds, err := p.Build()
		if err != nil {
			b.Fatal(err)
		}
		stats = ds.Stats()
	}
	b.ReportMetric(float64(stats.Contracts), "contracts")
	b.ReportMetric(float64(stats.ProfitTxs), "profit-txs")
}

// BenchmarkTable2_FamilyClustering regenerates Table 2: operator
// union-find plus contract/affiliate attribution and the family
// roll-up.
func BenchmarkTable2_FamilyClustering(b *testing.B) {
	w, ds, corpus, _ := fixture(b)
	b.ReportAllocs()
	var top3 float64
	for i := 0; i < b.N; i++ {
		cl := cluster.Clusterer{Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels}
		fams, err := cl.Cluster(ds)
		if err != nil {
			b.Fatal(err)
		}
		rows := corpus.FamilyTable(fams, 2)
		top3 = measure.TopFamiliesProfitShare(rows, 3)
	}
	b.ReportMetric(top3*100, "top3-profit-%")
}

// BenchmarkTable3_ContractAnalysis regenerates Table 3: decompiling
// the dominant families' busiest profit-sharing contracts.
func BenchmarkTable3_ContractAnalysis(b *testing.B) {
	w, ds, _, fams := fixture(b)
	read := func(a ethtypes.Address, k ethtypes.Hash) ethtypes.Hash { return w.Chain.StorageAt(a, k) }
	var targets []ethtypes.Address
	for _, fam := range fams[:3] {
		var best ethtypes.Address
		bestTxs := -1
		for _, con := range fam.Contracts {
			if rec := ds.Contracts[con]; rec != nil && rec.TxCount > bestTxs {
				best, bestTxs = con, rec.TxCount
			}
		}
		targets = append(targets, best)
	}
	b.ReportAllocs()
	b.ResetTimer()
	multicalls := 0
	for i := 0; i < b.N; i++ {
		multicalls = 0
		for _, addr := range targets {
			an := contracts.Decompile(w.Chain.CodeAt(addr), addr, read)
			if an.HasMulticall {
				multicalls++
			}
		}
	}
	b.ReportMetric(float64(multicalls), "multicall-contracts")
}

// BenchmarkTable4_TLDDistribution regenerates Table 4 over a 32,819
// domain corpus (the paper's detected-site count).
func BenchmarkTable4_TLDDistribution(b *testing.B) {
	gen := domains.NewGenerator(1910)
	corpus := make([]string, 32819)
	for i := range corpus {
		corpus[i] = gen.Phishing()
	}
	b.ReportAllocs()
	b.ResetTimer()
	var comShare float64
	for i := 0; i < b.N; i++ {
		dist := domains.TLDDistribution(corpus)
		comShare = dist[0].Fraction
	}
	b.ReportMetric(comShare*100, "com-%")
}

// BenchmarkFigure4_ExampleTrace executes one complete profit-sharing
// transaction through the EVM (Figure 4's 27.1 ETH example shape).
func BenchmarkFigure4_ExampleTrace(b *testing.B) {
	operator := ethtypes.Addr("0x00006deacd9ad19db3d81f8410ea2bd5ea570000")
	affiliate := ethtypes.Addr("0x71f1917711917711917711917711917711164677")
	victim := ethtypes.Addr("0x1c71e00000000000000000000000000000000001")
	c := chain.New(time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC))
	c.Fund(victim, ethtypes.Ether(1_000_000_000))
	initcode, err := contracts.Deploy(contracts.Spec{
		Style: contracts.StyleClaim, Operator: operator,
		OperatorPerMille: 200, Authorized: operator,
	})
	if err != nil {
		b.Fatal(err)
	}
	_, rs := c.Mine(time.Now(), &chain.Transaction{From: victim, Data: initcode})
	addr := rs[0].ContractAddress
	data, err := contracts.ClaimData("Claim(address)", affiliate)
	if err != nil {
		b.Fatal(err)
	}
	cl := core.Classifier{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rs := c.Mine(time.Now(), &chain.Transaction{
			From: victim, To: &addr, Value: ethtypes.Ether(27), Data: data,
		})
		if !rs[0].Status {
			b.Fatal(rs[0].Err)
		}
		tx, _ := c.Transaction(rs[0].TxHash)
		if len(cl.Classify(tx, rs[0])) != 1 {
			b.Fatal("classification failed")
		}
	}
}

// BenchmarkFigure6_VictimLossDistribution regenerates Figure 6.
func BenchmarkFigure6_VictimLossDistribution(b *testing.B) {
	_, _, corpus, _ := fixture(b)
	b.ReportAllocs()
	var under float64
	for i := 0; i < b.N; i++ {
		rep := corpus.Victims()
		under = rep.Under1000Fraction
	}
	b.ReportMetric(under*100, "under1k-%")
}

// BenchmarkFigure7_AffiliateProfitDistribution regenerates Figure 7.
func BenchmarkFigure7_AffiliateProfitDistribution(b *testing.B) {
	_, _, corpus, _ := fixture(b)
	b.ReportAllocs()
	var over1k float64
	for i := 0; i < b.N; i++ {
		rep := corpus.Affiliates()
		over1k = rep.Over1000Fraction
	}
	b.ReportMetric(over1k*100, "over1k-%")
}

// BenchmarkSec43_RatioDistribution regenerates the §4.3 ratio mix.
func BenchmarkSec43_RatioDistribution(b *testing.B) {
	_, _, corpus, _ := fixture(b)
	b.ReportAllocs()
	var share20 float64
	for i := 0; i < b.N; i++ {
		dist := corpus.RatioDistribution()
		for _, rs := range dist {
			if rs.PerMille == 200 {
				share20 = rs.Fraction
			}
		}
	}
	b.ReportMetric(share20*100, "ratio20-%")
}

// BenchmarkSec52_TotalsAndValidation regenerates the §5.2 headline:
// totals plus the sampling re-validation.
func BenchmarkSec52_TotalsAndValidation(b *testing.B) {
	w, ds, corpus, _ := fixture(b)
	b.ReportAllocs()
	var fps int
	for i := 0; i < b.N; i++ {
		v := core.Validator{Source: core.LocalSource{Chain: w.Chain}, SamplePerAccount: 10}
		rep, err := v.Validate(ds)
		if err != nil {
			b.Fatal(err)
		}
		fps = len(rep.FalsePositives)
		_ = corpus.Totals()
	}
	b.ReportMetric(float64(fps), "false-positives")
}

// BenchmarkSec61_VictimAnalysis regenerates the §6.1 statistics.
func BenchmarkSec61_VictimAnalysis(b *testing.B) {
	_, _, corpus, _ := fixture(b)
	b.ReportAllocs()
	var sim float64
	for i := 0; i < b.N; i++ {
		rep := corpus.Victims()
		sim = rep.SimultaneousFraction
	}
	b.ReportMetric(sim*100, "simultaneous-%")
}

// BenchmarkSec62_OperatorAnalysis regenerates the §6.2 statistics.
func BenchmarkSec62_OperatorAnalysis(b *testing.B) {
	_, _, corpus, _ := fixture(b)
	b.ReportAllocs()
	var share float64
	for i := 0; i < b.N; i++ {
		rep := corpus.Operators(worldgen.DatasetEnd)
		share = rep.TopQuartileShare
	}
	b.ReportMetric(share*100, "topquartile-%")
}

// BenchmarkSec63_AffiliateAnalysis regenerates the §6.3 statistics.
func BenchmarkSec63_AffiliateAnalysis(b *testing.B) {
	_, _, corpus, _ := fixture(b)
	b.ReportAllocs()
	var single float64
	for i := 0; i < b.N; i++ {
		rep := corpus.Affiliates()
		single = rep.SingleOperatorFraction
	}
	b.ReportMetric(single*100, "single-op-%")
}

// BenchmarkSec81_LabelCoverage regenerates the §8.1 statistic.
func BenchmarkSec81_LabelCoverage(b *testing.B) {
	w, _, corpus, _ := fixture(b)
	b.ReportAllocs()
	var cov float64
	for i := 0; i < b.N; i++ {
		cov = corpus.LabelCoverage(func(a ethtypes.Address) bool {
			return w.Labels.Has(a, "etherscan")
		})
	}
	b.ReportMetric(cov*100, "etherscan-%")
}

// BenchmarkSec82_WebsiteDetection regenerates the §8.2 pipeline over a
// live HTTP fleet: CT polling, domain filtering, crawling, fingerprint
// matching.
func BenchmarkSec82_WebsiteDetection(b *testing.B) {
	fleet := website.GenerateFleet(website.FleetConfig{
		Seed: 1910, Phishing: 150, Benign: 60, Bait: 15,
	})
	hostSrv := httptest.NewServer(website.NewHost(fleet))
	defer hostSrv.Close()
	log, err := ct.NewLog()
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range fleet {
		if s.HTTPS {
			if _, err := log.Issue([]string{s.Domain}, s.Issued); err != nil {
				b.Fatal(err)
			}
		}
	}
	ctSrv := httptest.NewServer(log.Handler())
	defer ctSrv.Close()
	corpus := toolkit.BuildCorpus(1910, 87)

	b.ReportAllocs()
	b.ResetTimer()
	var detected int
	for i := 0; i < b.N; i++ {
		det := &sitehunt.Detector{
			CT:      ct.NewClient(ctSrv.URL),
			Crawler: crawler.New(hostSrv.URL),
			Corpus:  corpus,
		}
		rep, err := det.Run()
		if err != nil {
			b.Fatal(err)
		}
		detected = rep.Detected()
	}
	b.ReportMetric(float64(detected), "sites-detected")
}

// ----- Ablation benches (DESIGN.md §5) -----

// BenchmarkAblation_ExpansionGate compares the connectivity-gated
// snowball against a global scan of all split-shaped contracts: the
// global scan admits the benign colliding splitters (false positives).
func BenchmarkAblation_ExpansionGate(b *testing.B) {
	w, _, _, _ := fixture(b)
	cl := core.Classifier{}
	b.ReportAllocs()
	var fps int
	for i := 0; i < b.N; i++ {
		// Global scan: classify the histories of ALL contracts with
		// split-shaped traffic, connectivity ignored.
		fps = 0
		for _, neg := range w.Truth.CollidingSplitters {
			for _, h := range w.Chain.TransactionsOf(neg) {
				tx, _ := w.Chain.Transaction(h)
				r, _ := w.Chain.Receipt(h)
				if len(cl.Classify(tx, r)) > 0 {
					fps++
					break
				}
			}
		}
	}
	b.ReportMetric(float64(fps), "global-scan-FPs")
	b.ReportMetric(0, "gated-FPs") // the gated pipeline admits none (see core tests)
}

// BenchmarkAblation_RatioTolerance sweeps the classifier's per-mille
// tolerance and reports recall over planted profit transactions.
func BenchmarkAblation_RatioTolerance(b *testing.B) {
	w, _, _, _ := fixture(b)
	for _, tol := range []int64{1, 5, 25} {
		b.Run(map[int64]string{1: "tol=0.1%", 5: "tol=0.5%", 25: "tol=2.5%"}[tol], func(b *testing.B) {
			cl := core.Classifier{TolerancePM: tol}
			b.ReportAllocs()
			var hits int
			for i := 0; i < b.N; i++ {
				hits = 0
				for h := range w.Truth.ProfitTxs {
					tx, _ := w.Chain.Transaction(h)
					r, _ := w.Chain.Receipt(h)
					if len(cl.Classify(tx, r)) > 0 {
						hits++
					}
				}
			}
			b.ReportMetric(100*float64(hits)/float64(len(w.Truth.ProfitTxs)), "recall-%")
		})
	}
}

// BenchmarkAblation_FlowShape compares strict two-transfer groups with
// a relaxed shape that admits larger groups.
func BenchmarkAblation_FlowShape(b *testing.B) {
	w, _, _, _ := fixture(b)
	for _, maxGroup := range []int{2, 4} {
		name := "exactly-two"
		if maxGroup > 2 {
			name = "up-to-four"
		}
		b.Run(name, func(b *testing.B) {
			cl := core.Classifier{MaxGroupSize: maxGroup}
			b.ReportAllocs()
			var hits int
			for i := 0; i < b.N; i++ {
				hits = 0
				for h := range w.Truth.ProfitTxs {
					tx, _ := w.Chain.Transaction(h)
					r, _ := w.Chain.Receipt(h)
					if len(cl.Classify(tx, r)) > 0 {
						hits++
					}
				}
			}
			b.ReportMetric(100*float64(hits)/float64(len(w.Truth.ProfitTxs)), "recall-%")
		})
	}
}

// BenchmarkAblation_ClusterEdges measures family counts with each edge
// type removed (paper §7.1 uses both).
func BenchmarkAblation_ClusterEdges(b *testing.B) {
	w, ds, _, _ := fixture(b)
	cases := []struct {
		name               string
		noDirect, noShared bool
	}{
		{"both-edges", false, false},
		{"no-shared-account", false, true},
		{"no-direct", true, false},
		{"no-edges", true, true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var fams int
			for i := 0; i < b.N; i++ {
				cl := cluster.Clusterer{
					Source: core.LocalSource{Chain: w.Chain}, Labels: w.Labels,
					DisableDirectEdges: c.noDirect, DisableSharedAccountEdges: c.noShared,
				}
				out, err := cl.Cluster(ds)
				if err != nil {
					b.Fatal(err)
				}
				fams = len(out)
			}
			b.ReportMetric(float64(fams), "families")
		})
	}
}

// BenchmarkAblation_DomainSimilarity sweeps the Levenshtein threshold
// of the §8.2 domain filter and reports how many of a mixed corpus
// pass.
func BenchmarkAblation_DomainSimilarity(b *testing.B) {
	gen := domains.NewGenerator(7)
	corpus := make([]string, 0, 2000)
	for i := 0; i < 1000; i++ {
		corpus = append(corpus, gen.Phishing())
	}
	for i := 0; i < 1000; i++ {
		corpus = append(corpus, gen.Benign())
	}
	for _, threshold := range []float64{0.6, 0.8, 0.95} {
		b.Run(map[float64]string{0.6: "thr=0.6", 0.8: "thr=0.8", 0.95: "thr=0.95"}[threshold], func(b *testing.B) {
			b.ReportAllocs()
			var flagged int
			for i := 0; i < b.N; i++ {
				flagged = 0
				for _, d := range corpus {
					if _, ok := domains.Suspicious(d, threshold); ok {
						flagged++
					}
				}
			}
			b.ReportMetric(float64(flagged), "flagged")
		})
	}
}

// ----- Parallel snowball expansion -----

// latencySource injects a fixed per-call delay on the hot fetch
// methods, simulating a remote RPC endpoint. It deliberately does not
// implement BatchSource, so the benchmark isolates what the frontier
// worker pool alone buys.
type latencySource struct {
	src   core.LocalSource
	delay time.Duration
}

func (s latencySource) TransactionsOf(a ethtypes.Address) ([]ethtypes.Hash, error) {
	return s.src.TransactionsOf(a)
}

func (s latencySource) IsContract(a ethtypes.Address) (bool, error) {
	return s.src.IsContract(a)
}

func (s latencySource) Transaction(h ethtypes.Hash) (*chain.Transaction, error) {
	time.Sleep(s.delay)
	return s.src.Transaction(h)
}

func (s latencySource) Receipt(h ethtypes.Hash) (*chain.Receipt, error) {
	time.Sleep(s.delay)
	return s.src.Receipt(h)
}

// BenchmarkPipelineConcurrency sweeps the dataset build's worker count
// against a 1ms-latency chain source. The dataset is byte-identical at
// every setting (see internal/core tests); only wall-clock moves.
func BenchmarkPipelineConcurrency(b *testing.B) {
	w, err := worldgen.Generate(worldgen.TestConfig(1910))
	if err != nil {
		b.Fatal(err)
	}
	src := latencySource{src: core.LocalSource{Chain: w.Chain}, delay: time.Millisecond}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				p := &core.Pipeline{Source: src, Labels: w.Labels, Concurrency: workers}
				ds, err := p.Build()
				if err != nil {
					b.Fatal(err)
				}
				stats = ds.Stats()
			}
			b.ReportMetric(float64(stats.ProfitTxs), "profit-txs")
		})
	}
}
